#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>
#include <utility>

#include "core/advisor.hpp"
#include "core/fault/error.hpp"
#include "service/recovery.hpp"
#include "sim/replay_telemetry.hpp"
#include "sim/simd.hpp"
#include "sim/topology.hpp"
#include "workloads/registry.hpp"

namespace knl::service {

namespace {

using repro::json::Value;

// ---------------------------------------------------------------------------
// Body parsing: every helper throws CorruptInput with the field name, which
// the error envelope turns into a 400 naming exactly what was wrong.
// ---------------------------------------------------------------------------
const Value& require_object(const Value& body) {
  if (!body.is_object()) {
    throw Error::corrupt_input("service/bad-body",
                               "request body must be a JSON object");
  }
  return body;
}

double require_number(const Value& body, const std::string& key) {
  const Value* v = body.find(key);
  if (v == nullptr || !v->is_number()) {
    throw Error::corrupt_input("service/bad-field",
                               "missing or non-numeric field '" + key + "'");
  }
  return v->as_number();
}

double number_or(const Value& body, const std::string& key, double fallback) {
  const Value* v = body.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw Error::corrupt_input("service/bad-field",
                               "field '" + key + "' must be a number");
  }
  return v->as_number();
}

bool bool_or(const Value& body, const std::string& key, bool fallback) {
  const Value* v = body.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    throw Error::corrupt_input("service/bad-field",
                               "field '" + key + "' must be a boolean");
  }
  return v->as_bool();
}

std::string require_string(const Value& body, const std::string& key) {
  const Value* v = body.find(key);
  if (v == nullptr || !v->is_string()) {
    throw Error::corrupt_input("service/bad-field",
                               "missing or non-string field '" + key + "'");
  }
  return v->as_string();
}

std::uint64_t require_bytes(const Value& body, const std::string& key) {
  const double raw = require_number(body, key);
  if (!(raw > 0.0) || raw > 1e15) {
    throw Error::corrupt_input("service/bad-field",
                               "field '" + key + "' must be in (0, 1e15] bytes");
  }
  return static_cast<std::uint64_t>(raw);
}

int require_threads(const Value& body, const std::string& key, int fallback) {
  const double raw = number_or(body, key, fallback);
  if (raw < 1.0 || raw > 4096.0 || raw != std::floor(raw)) {
    throw Error::corrupt_input("service/bad-field",
                               "field '" + key + "' must be an integer in [1, 4096]");
  }
  return static_cast<int>(raw);
}

MemConfig parse_config(const std::string& name) {
  if (name == "DRAM") return MemConfig::DRAM;
  if (name == "HBM") return MemConfig::HBM;
  if (name == "Cache Mode" || name == "CacheMode" || name == "CACHE") {
    return MemConfig::CacheMode;
  }
  throw Error::corrupt_input("service/bad-config",
                             "unknown memory config '" + name +
                                 "' (known: DRAM, HBM, Cache Mode)");
}

std::vector<MemConfig> parse_configs(const Value& body) {
  const Value* v = body.find("configs");
  if (v == nullptr) {
    return {MemConfig::DRAM, MemConfig::HBM, MemConfig::CacheMode};
  }
  if (!v->is_array() || v->as_array().empty()) {
    throw Error::corrupt_input("service/bad-field",
                               "field 'configs' must be a non-empty array");
  }
  std::vector<MemConfig> configs;
  for (const Value& item : v->as_array()) {
    if (!item.is_string()) {
      throw Error::corrupt_input("service/bad-field",
                                 "field 'configs' must hold strings");
    }
    configs.push_back(parse_config(item.as_string()));
  }
  return configs;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------
Value run_result_json(const RunResult& r) {
  Value out = Value::object();
  out.set("feasible", r.feasible);
  if (!r.feasible) {
    out.set("infeasible_reason", r.infeasible_reason);
    return out;
  }
  out.set("seconds", r.seconds);
  out.set("achieved_bw_gbs", r.achieved_bw_gbs);
  out.set("avg_latency_ns", r.avg_latency_ns);
  out.set("bytes_from_memory", r.bytes_from_memory);
  out.set("flops", r.flops);
  out.set("mcdram_hit_rate", r.mcdram_hit_rate);
  return out;
}

Value figure_json(const report::Figure& figure) {
  Value out = Value::object();
  out.set("title", figure.title());
  Value series = Value::array();
  for (const report::Series& s : figure.series()) {
    Value one = Value::object();
    one.set("name", s.name);
    Value points = Value::array();
    for (const auto& [x, y] : s.points) {
      Value point = Value::array();
      point.push_back(x);
      point.push_back(y);
      points.push_back(std::move(point));
    }
    one.set("points", std::move(points));
    series.push_back(std::move(one));
  }
  out.set("series", std::move(series));
  return out;
}

Value sweep_stats_json(const report::SweepStats& stats) {
  Value out = Value::object();
  out.set("cells", static_cast<double>(stats.cells));
  out.set("evaluated", static_cast<double>(stats.evaluated));
  out.set("cache_hits", static_cast<double>(stats.cache_hits));
  out.set("infeasible", static_cast<double>(stats.infeasible));
  out.set("failed", static_cast<double>(stats.failed));
  out.set("profile_passes", static_cast<double>(stats.profile_passes));
  out.set("profile_hits", static_cast<double>(stats.profile_hits));
  out.set("cells_derived", static_cast<double>(stats.cells_derived));
  return out;
}

Value capacity_cell_json(const report::CapacityCell& cell) {
  Value out = Value::object();
  out.set("capacity_bytes", static_cast<double>(cell.capacity_bytes));
  out.set("ways", static_cast<double>(cell.ways));
  out.set("hit_rate", cell.hit_rate);
  out.set("effective_bw_gbs", cell.effective_bw_gbs);
  out.set("avg_latency_ns", cell.avg_latency_ns);
  out.set("seconds", cell.seconds);
  out.set("profile_hit", cell.profile_hit);
  return out;
}

/// Shared grid-geometry parsing for /sweep capacity mode and /whatif's
/// capacity override: optional cache_line_bytes / cache_sets / sample_every
/// with the constraints the profile engine needs, validated here so a bad
/// geometry reads as a 400 naming the field, not a 500 from a deep throw.
report::CapacityGrid parse_capacity_grid(const Value& body,
                                         std::vector<std::uint64_t> capacities) {
  report::CapacityGrid grid;
  grid.capacities_bytes = std::move(capacities);
  grid.line_bytes =
      static_cast<std::uint64_t>(number_or(body, "cache_line_bytes", 64.0));
  if (grid.line_bytes < 8 || grid.line_bytes > 4096 ||
      (grid.line_bytes & (grid.line_bytes - 1)) != 0) {
    throw Error::corrupt_input(
        "service/bad-field",
        "field 'cache_line_bytes' must be a power of two in [8, 4096]");
  }
  grid.num_sets = static_cast<std::uint64_t>(
      number_or(body, "cache_sets", static_cast<double>(grid.num_sets)));
  if (grid.num_sets < 1 || grid.num_sets > (1ull << 26)) {
    throw Error::corrupt_input("service/bad-field",
                               "field 'cache_sets' must be in [1, 2^26]");
  }
  grid.sample_every =
      static_cast<std::uint64_t>(number_or(body, "sample_every", 1.0));
  if (grid.sample_every < 1 || grid.sample_every > grid.num_sets) {
    throw Error::corrupt_input(
        "service/bad-field",
        "field 'sample_every' must be in [1, cache_sets]");
  }
  const std::uint64_t set_bytes = grid.line_bytes * grid.num_sets;
  for (const std::uint64_t capacity : grid.capacities_bytes) {
    if (capacity == 0 || capacity % set_bytes != 0) {
      throw Error::corrupt_input(
          "service/bad-field",
          "capacity " + std::to_string(capacity) +
              " must be a positive multiple of cache_line_bytes*cache_sets (" +
              std::to_string(set_bytes) + ")");
    }
  }
  return grid;
}

Value recommendation_json(const Recommendation& rec) {
  Value out = Value::object();
  out.set("config", to_string(rec.config));
  out.set("threads", rec.threads);
  out.set("speedup_vs_dram64", rec.predicted_speedup_vs_dram64);
  out.set("feasible", rec.feasible);
  if (!rec.rationale.empty()) out.set("rationale", rec.rationale);
  return out;
}

int status_for(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::CorruptInput: return 400;
    case ErrorCategory::Resource: return 429;
    case ErrorCategory::Transient: return 503;
    case ErrorCategory::Internal: return 500;
  }
  return 500;
}

/// RAII in-flight gauge: admission is checked by the caller; this only
/// guarantees the decrement on every exit path.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<std::uint64_t>& gauge) : gauge_(gauge) {
    gauge_.fetch_add(1, std::memory_order_relaxed);
  }
  ~InflightGuard() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<std::uint64_t>& gauge_;
};

/// Declared-topology summary attached to query responses and /stats: which
/// memory hierarchy a machine actually simulates, so multi-profile
/// deployments can tell fingerprints apart without a registry lookup.
Value topology_json(const Machine& machine) {
  const sim::MemoryTopology& topology = machine.memory_topology();
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016" PRIx64,
                machine.config().fingerprint());
  Value out = Value::object();
  out.set("name", topology.name);
  out.set("fingerprint", std::string(fingerprint));
  out.set("tiers", static_cast<double>(topology.tier_count()));
  out.set("tier_names", topology.tier_names());
  Value tiers = Value::array();
  for (std::size_t i = 0; i < topology.tier_count(); ++i) {
    const sim::MemoryTier& tier = topology.tier(i);
    Value one = Value::object();
    one.set("name", tier.name);
    one.set("kind", sim::to_string(tier.kind));
    one.set("capacity_bytes", static_cast<double>(tier.params.capacity_bytes));
    one.set("stream_bw_gbs", tier.params.stream_bw_gbs);
    one.set("idle_latency_ns", tier.params.idle_latency_ns);
    one.set("cache_front", tier.cache_front);
    if (tier.backing != -1) {
      one.set("backing", topology.tier(static_cast<std::size_t>(tier.backing)).name);
    }
    tiers.push_back(std::move(one));
  }
  out.set("tier_detail", std::move(tiers));
  return out;
}

}  // namespace

PlacementService::PlacementService(ServiceOptions options)
    : options_(options),
      pool_(options.workers <= 0 ? 0u : static_cast<unsigned>(options.workers)),
      health_(options.health) {
  machines_.emplace("knl7210", Machine(MachineConfig::knl7210()));
  machines_.emplace("knl7210_equal_latency",
                    Machine(MachineConfig::knl7210_equal_latency()));
  machines_.emplace("knl7210_snc4", Machine(MachineConfig::knl7210_snc4()));
  machines_.emplace("ddr_only", Machine(MachineConfig::ddr_only()));
  machines_.emplace("xeonmax", Machine(MachineConfig::xeon_max()));
  machines_.emplace("knl_nvm", Machine(MachineConfig::knl_nvm()));
  report::SweepCache::instance().set_capacity(options_.cache_capacity);
}

std::vector<std::string> PlacementService::machine_names() const {
  std::vector<std::string> names;
  for (const auto& [name, machine] : machines_) names.push_back(name);
  return names;
}

ServiceCounters PlacementService::counters() const {
  ServiceCounters c;
  c.placement = placement_.load(std::memory_order_relaxed);
  c.sweep = sweep_.load(std::memory_order_relaxed);
  c.whatif = whatif_.load(std::memory_order_relaxed);
  c.stats = stats_.load(std::memory_order_relaxed);
  c.healthz = healthz_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.inflight = inflight_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.brownout = brownout_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  return c;
}

int PlacementService::adaptive_retry_after_ms() const {
  const double base = static_cast<double>(options_.retry_after_ms);
  const double fraction =
      options_.max_inflight == 0
          ? 1.0
          : static_cast<double>(inflight_.load(std::memory_order_relaxed)) /
                static_cast<double>(options_.max_inflight);
  return static_cast<int>(base * (1.0 + 8.0 * std::min(fraction, 1.0)));
}

const Machine& PlacementService::find_machine(const Value& body) const {
  std::string name = "knl7210";
  if (const Value* v = body.find("machine"); v != nullptr) {
    if (!v->is_string()) {
      throw Error::corrupt_input("service/bad-field",
                                 "field 'machine' must be a string");
    }
    name = v->as_string();
  }
  const auto it = machines_.find(name);
  if (it == machines_.end()) {
    std::string known;
    for (const auto& [n, machine] : machines_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw Error::corrupt_input("service/unknown-machine",
                               "unknown machine '" + name + "' (known: " + known + ")");
  }
  return it->second;
}

ServiceResponse PlacementService::handle_text(const std::string& method,
                                              const std::string& target,
                                              const std::string& body_text,
                                              double deadline_ms) {
  Value body;
  if (!body_text.empty()) {
    std::string error;
    auto parsed = Value::parse(body_text, &error);
    if (!parsed) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      Value envelope = Value::object();
      Value detail = Value::object();
      detail.set("status", 400);
      detail.set("category", to_string(ErrorCategory::CorruptInput));
      detail.set("code", "service/bad-json");
      detail.set("message", "request body is not valid JSON: " + error);
      envelope.set("error", std::move(detail));
      return {400, std::move(envelope)};
    }
    body = std::move(*parsed);
  }
  return handle(method, target, body, deadline_ms);
}

ServiceResponse PlacementService::handle(const std::string& method,
                                         const std::string& target,
                                         const Value& body,
                                         double deadline_ms) {
  try {
    return dispatch(method, target, body, deadline_ms);
  } catch (const Error& e) {
    int status = status_for(e.category());
    // Routing failures are CorruptInput in the taxonomy but deserve their
    // classic HTTP spellings; an exhausted budget is the gateway-timeout
    // arm of the Resource category.
    if (e.code() == "service/not-found") status = 404;
    if (e.code() == "service/bad-method") status = 405;
    if (e.code() == kDeadlineExceededCode) status = 504;
    if (status == 429) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (e.code() == "service/brownout") {
        brownout_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (status == 504) deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
    Value envelope = Value::object();
    Value detail = Value::object();
    detail.set("status", status);
    detail.set("category", to_string(e.category()));
    detail.set("code", e.code());
    detail.set("message", e.message());
    if (status == 429 || status == 503) {
      // Back-pressure hints: how long to wait (scaled by queue depth) and
      // which brownout state produced the rejection.
      detail.set("retry_after_ms", adaptive_retry_after_ms());
      detail.set("health", to_string(health_.state()));
    }
    envelope.set("error", std::move(detail));
    return {status, std::move(envelope)};
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Value envelope = Value::object();
    Value detail = Value::object();
    detail.set("status", 500);
    detail.set("category", to_string(ErrorCategory::Internal));
    detail.set("code", "service/internal");
    detail.set("message", e.what());
    envelope.set("error", std::move(detail));
    return {500, std::move(envelope)};
  }
}

ServiceResponse PlacementService::dispatch(const std::string& method,
                                           const std::string& target,
                                           const Value& body,
                                           double deadline_ms) {
  // Strip any query string: routing is on the path alone.
  const std::string path = target.substr(0, target.find('?'));

  // The two GET endpoints bypass the pool and the shedding gate: health
  // and stats must answer even when the service rejects new work.
  if (path == "/healthz") {
    if (method != "GET") {
      throw Error::corrupt_input("service/bad-method", "/healthz expects GET");
    }
    healthz_.fetch_add(1, std::memory_order_relaxed);
    return {200, do_healthz()};
  }
  if (path == "/stats") {
    if (method != "GET") {
      throw Error::corrupt_input("service/bad-method", "/stats expects GET");
    }
    stats_.fetch_add(1, std::memory_order_relaxed);
    return {200, do_stats()};
  }

  using Query = Value (PlacementService::*)(const Value&, const QueryContext&) const;
  Query query = nullptr;
  std::atomic<std::uint64_t>* counter = nullptr;
  if (path == "/placement") {
    query = &PlacementService::do_placement;
    counter = &placement_;
  } else if (path == "/whatif") {
    query = &PlacementService::do_whatif;
    counter = &whatif_;
  } else if (path == "/sweep") {
    query = &PlacementService::do_sweep;
    counter = &sweep_;
  } else {
    throw Error::corrupt_input("service/not-found", "unknown endpoint " + path);
  }
  if (method != "POST") {
    throw Error::corrupt_input("service/bad-method", path + " expects POST");
  }

  // Resolve the request budget: transport header first, then the body's
  // own `deadline_ms` field, then the server default. A null deadline
  // (default 0 everywhere) stays unbounded.
  double budget_ms = deadline_ms;
  if (budget_ms <= 0.0 && body.is_object()) {
    budget_ms = number_or(body, "deadline_ms", 0.0);
    if (budget_ms < 0.0) {
      throw Error::corrupt_input("service/bad-field",
                                 "field 'deadline_ms' must be positive");
    }
  }
  if (budget_ms <= 0.0) budget_ms = options_.default_deadline_ms;

  QueryContext ctx;
  ctx.deadline = Deadline::shared_after_ms(budget_ms);

  // Load shedding (the Resource arm of the taxonomy): admit at most
  // max_inflight queries; past the bound, reject with a retry-after hint
  // rather than queueing without bound. Shedding state rejects everything
  // the same way — the brownout has decided the service cannot keep its
  // latency promises at all.
  const std::uint64_t inflight_now = inflight_.load(std::memory_order_relaxed);
  health_.note_queue(inflight_now, options_.max_inflight);
  if (inflight_now >= options_.max_inflight) {
    throw Error::resource("service/overloaded",
                          "service at capacity (" +
                              std::to_string(options_.max_inflight) +
                              " queries in flight); retry later");
  }
  if (health_.state() == HealthState::Shedding) {
    throw Error::resource("service/brownout",
                          "service is shedding load (rolling p99 or queue depth "
                          "over the brownout threshold); retry later");
  }
  // Admission deadline check: a request whose budget is already gone (the
  // client queued it behind a slow connection, or sent a stale retry) is
  // answered 504 without costing a pool slot.
  if (ctx.deadline != nullptr) ctx.deadline->check("admission of " + path);

  ctx.degraded = health_.state() == HealthState::Degraded;
  if (ctx.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);

  const InflightGuard guard(inflight_);
  counter->fetch_add(1, std::memory_order_relaxed);

  // Journal the admitted request (when knl-serve armed one): a kill between
  // here and JournalGuard's end record leaves a begin without an end, which
  // the restarted daemon replays to re-warm the cache.
  RequestJournal* journal = journal_.load(std::memory_order_acquire);
  struct JournalGuard {
    RequestJournal* journal;
    std::uint64_t seq;
    ~JournalGuard() {
      if (journal != nullptr) journal->end(seq);
    }
  } journal_guard{journal,
                  journal != nullptr ? journal->begin(method, path, body.dump(0)) : 0};

  // Feed the brownout monitor on every admitted query, success or error —
  // the p99 it watches must include the slow failures.
  struct LatencyRecorder {
    HealthMonitor& monitor;
    const std::atomic<std::uint64_t>& inflight;
    std::size_t max_inflight;
    std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
    ~LatencyRecorder() {
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      monitor.record(elapsed.count(), inflight.load(std::memory_order_relaxed),
                     max_inflight);
    }
  } latency_recorder{health_, inflight_, options_.max_inflight};

  // Execute on the service pool: socket threads block here while at most
  // `workers` queries compute. The future rethrows any query error into
  // the caller's error envelope. The dequeue check catches budgets that
  // died waiting for a worker.
  const Value& parsed = require_object(body);
  auto future = pool_.submit([this, query, &parsed, &ctx] {
    if (ctx.deadline != nullptr) ctx.deadline->check("pool dequeue");
    return (this->*query)(parsed, ctx);
  });
  return {200, future.get()};
}

Value PlacementService::do_placement(const Value& body,
                                     const QueryContext& /*ctx*/) const {
  const Machine& machine = find_machine(body);
  const Value* app_field = body.find("app");
  const Value& app_body = app_field != nullptr ? *app_field : body;

  AppCharacteristics app;
  if (const Value* v = app_body.find("name"); v != nullptr && v->is_string()) {
    app.name = v->as_string();
  }
  app.footprint_bytes = require_bytes(app_body, "footprint_bytes");
  app.regular_fraction = number_or(app_body, "regular_fraction", 1.0);
  if (app.regular_fraction < 0.0 || app.regular_fraction > 1.0) {
    throw Error::corrupt_input("service/bad-field",
                               "field 'regular_fraction' must be in [0, 1]");
  }
  app.flops_per_byte = number_or(app_body, "flops_per_byte", 0.0);
  app.max_threads = require_threads(app_body, "max_threads", app.max_threads);
  app.random_granule_bytes =
      static_cast<std::uint64_t>(number_or(app_body, "random_granule_bytes", 8.0));

  // Validate capacity up front so an impossible footprint reads as a bad
  // request, not as a Resource failure deep in the advisor.
  if (app.footprint_bytes > machine.config().timing.ddr.capacity_bytes) {
    throw Error::corrupt_input("service/bad-field",
                               "footprint_bytes exceeds the machine's DDR capacity");
  }

  const Advisor advisor(machine);
  const Advice advice = advisor.advise(app);

  Value out = Value::object();
  out.set("app", app.name);
  out.set("classification", advice.classification);
  out.set("best", recommendation_json(advice.best));
  Value ranked = Value::array();
  for (const Recommendation& rec : advice.ranked) {
    ranked.push_back(recommendation_json(rec));
  }
  out.set("ranked", std::move(ranked));
  return out;
}

Value PlacementService::do_whatif(const Value& body,
                                  const QueryContext& ctx) const {
  const Machine& machine = find_machine(body);
  const std::string workload_name = require_string(body, "workload");
  const workloads::RegistryEntry* entry = nullptr;
  try {
    entry = &workloads::find_workload(workload_name);
  } catch (const std::exception&) {
    throw Error::corrupt_input("service/unknown-workload",
                               "unknown workload '" + workload_name + "'");
  }
  const std::uint64_t bytes = require_bytes(body, "bytes");
  const int threads = require_threads(body, "threads", 64);
  const MemConfig config =
      parse_config(body.find("config") != nullptr ? require_string(body, "config")
                                                  : std::string("DRAM"));

  const auto workload = entry->make(bytes);
  bool cache_hit = false;
  const RunResult result = report::cached_run(
      machine, workload->profile(), RunConfig{config, threads, 0.0}, &cache_hit);

  Value out = Value::object();
  out.set("workload", entry->info.name);
  out.set("config", to_string(config));
  out.set("threads", threads);
  out.set("footprint_bytes", static_cast<double>(workload->footprint_bytes()));
  out.set("result", run_result_json(result));
  if (result.feasible) {
    out.set("metric", workload->metric(result));
    out.set("metric_name", entry->info.metric_name);
  }
  out.set("cache_hit", cache_hit);
  out.set("topology", topology_json(machine));

  // Optional MCDRAM-capacity what-if: a one-cell capacity grid through the
  // single-pass engine. Because profiles are keyed on (trace, machine,
  // threads, geometry) — not on the capacity list — this query hits the
  // profile another grid populated, whatever capacities that grid swept.
  if (body.find("mcdram_capacity_bytes") != nullptr) {
    const std::uint64_t capacity = require_bytes(body, "mcdram_capacity_bytes");
    report::CapacityGrid grid = parse_capacity_grid(body, {capacity});
    report::SweepOptions sweep_options;
    sweep_options.jobs = options_.sweep_jobs;
    sweep_options.single_pass = bool_or(body, "single_pass", true);
    sweep_options.deadline = ctx.deadline;
    sweep_options.cache_only = ctx.degraded;
    const report::CapacitySweepRun capacity_run = report::sweep_capacities_run(
        machine, workload->profile(), threads, std::move(grid),
        report::Figure("capacity what-if", "GB", ""), sweep_options);
    if (!capacity_run.failures.empty()) {
      const report::CellFailure& f = capacity_run.failures.front();
      throw Error(f.category, "service/capacity-whatif", f.message);
    }
    Value whatif = capacity_cell_json(capacity_run.cells.front());
    whatif.set("stats", sweep_stats_json(capacity_run.stats));
    out.set("capacity_whatif", std::move(whatif));
  }
  return out;
}

Value PlacementService::do_sweep(const Value& body,
                                 const QueryContext& ctx) const {
  const Machine& machine = find_machine(body);
  const std::string workload_name = require_string(body, "workload");
  const workloads::RegistryEntry* entry = nullptr;
  try {
    entry = &workloads::find_workload(workload_name);
  } catch (const std::exception&) {
    throw Error::corrupt_input("service/unknown-workload",
                               "unknown workload '" + workload_name + "'");
  }
  const std::vector<MemConfig> configs = parse_configs(body);

  const Value* sizes_field = body.find("sizes_bytes");
  const Value* threads_field = body.find("thread_counts");
  const Value* capacities_field = body.find("capacities_bytes");
  const int modes = (sizes_field != nullptr ? 1 : 0) +
                    (threads_field != nullptr ? 1 : 0) +
                    (capacities_field != nullptr ? 1 : 0);
  if (modes != 1) {
    throw Error::corrupt_input(
        "service/bad-field",
        "exactly one of 'sizes_bytes' (size sweep), 'thread_counts' "
        "(thread sweep) or 'capacities_bytes' (MCDRAM capacity sweep) is "
        "required");
  }

  report::SweepOptions sweep_options;
  sweep_options.jobs = options_.sweep_jobs;
  sweep_options.deadline = ctx.deadline;
  // Degraded brownout: answer from residency alone — cache hits and
  // already-profiled grids succeed, cold cells fail fast as
  // sweep/cache-only-miss instead of competing for the simulator.
  sweep_options.cache_only = ctx.degraded;

  if (capacities_field != nullptr) {
    // Capacity mode: one trace profiling pass answers the whole grid (and,
    // via the profile cache, later grids with the same fingerprint). The
    // literal string "auto" derives the axis from the machine's declared
    // topology (equal steps up to its cache-capable front tier).
    std::vector<std::uint64_t> capacities;
    report::CapacityGrid grid;
    if (capacities_field->is_string() && capacities_field->as_string() == "auto") {
      grid = parse_capacity_grid(body, {});
      // Degraded brownout coarsens the derived axis: half the points means
      // half the cells that can miss the cache, so "auto" keeps answering
      // something useful instead of failing most of a fine grid.
      grid.capacities_bytes = report::default_capacity_axis(
          machine.memory_topology(), grid.line_bytes * grid.num_sets,
          ctx.degraded ? 4 : 8);
    } else {
      if (!capacities_field->is_array() || capacities_field->as_array().empty()) {
        throw Error::corrupt_input(
            "service/bad-field",
            "field 'capacities_bytes' must be a non-empty array or \"auto\"");
      }
      for (const Value& item : capacities_field->as_array()) {
        if (!item.is_number() || !(item.as_number() > 0.0) ||
            item.as_number() > 1e15) {
          throw Error::corrupt_input("service/bad-field",
                                     "'capacities_bytes' entries must be in (0, 1e15]");
        }
        capacities.push_back(static_cast<std::uint64_t>(item.as_number()));
      }
      grid = parse_capacity_grid(body, std::move(capacities));
    }
    if (grid.capacities_bytes.size() > options_.max_sweep_cells) {
      throw Error::corrupt_input(
          "service/grid-too-large",
          "sweep grid exceeds " + std::to_string(options_.max_sweep_cells) +
              " cells; split the query");
    }
    const std::uint64_t bytes = require_bytes(body, "bytes");
    const int threads = require_threads(body, "threads", 64);
    sweep_options.single_pass = bool_or(body, "single_pass", true);
    const auto workload = entry->make(bytes);

    const report::CapacitySweepRun run = report::sweep_capacities_run(
        machine, workload->profile(), threads, std::move(grid),
        report::Figure(entry->info.name + " capacity sweep", "GB", ""),
        sweep_options);

    if (Deadline::expired(ctx.deadline)) {
      throw Error::resource(
          kDeadlineExceededCode,
          "deadline exceeded after completing " +
              std::to_string(run.stats.cells - run.stats.failed) + " of " +
              std::to_string(run.stats.cells) + " capacity cells");
    }

    Value out = Value::object();
    out.set("workload", entry->info.name);
    if (ctx.degraded) out.set("served_degraded", true);
    out.set("figure", figure_json(run.figure));
    out.set("stats", sweep_stats_json(run.stats));
    Value cells = Value::array();
    for (const report::CapacityCell& cell : run.cells) {
      cells.push_back(capacity_cell_json(cell));
    }
    out.set("cells", std::move(cells));
    if (!run.failures.empty()) {
      Value failures = Value::array();
      for (const report::CellFailure& f : run.failures) {
        Value one = Value::object();
        one.set("cell", f.label);
        one.set("category", to_string(f.category));
        one.set("message", f.message);
        failures.push_back(std::move(one));
      }
      out.set("failures", std::move(failures));
    }
    out.set("topology", topology_json(machine));
    return out;
  }

  report::SweepRun run{report::Figure("sweep", "", ""), {}, {}};
  if (sizes_field != nullptr) {
    if (!sizes_field->is_array() || sizes_field->as_array().empty()) {
      throw Error::corrupt_input("service/bad-field",
                                 "field 'sizes_bytes' must be a non-empty array");
    }
    std::vector<std::uint64_t> sizes;
    for (const Value& item : sizes_field->as_array()) {
      if (!item.is_number() || !(item.as_number() > 0.0) ||
          item.as_number() > 1e15) {
        throw Error::corrupt_input("service/bad-field",
                                   "'sizes_bytes' entries must be in (0, 1e15]");
      }
      sizes.push_back(static_cast<std::uint64_t>(item.as_number()));
    }
    if (sizes.size() * configs.size() > options_.max_sweep_cells) {
      throw Error::corrupt_input(
          "service/grid-too-large",
          "sweep grid exceeds " + std::to_string(options_.max_sweep_cells) +
              " cells; split the query");
    }
    const int threads = require_threads(body, "threads", 64);
    run = report::sweep_sizes_run(
        machine, [entry](std::uint64_t b) { return entry->make(b); }, sizes, threads,
        configs, report::Figure(entry->info.name + " sweep", "GB", ""), sweep_options);
  } else {
    if (!threads_field->is_array() || threads_field->as_array().empty()) {
      throw Error::corrupt_input("service/bad-field",
                                 "field 'thread_counts' must be a non-empty array");
    }
    std::vector<int> thread_counts;
    for (const Value& item : threads_field->as_array()) {
      const double raw = item.is_number() ? item.as_number() : 0.0;
      if (raw < 1.0 || raw > 4096.0 || raw != std::floor(raw)) {
        throw Error::corrupt_input(
            "service/bad-field", "'thread_counts' entries must be integers in [1, 4096]");
      }
      thread_counts.push_back(static_cast<int>(raw));
    }
    if (thread_counts.size() * configs.size() > options_.max_sweep_cells) {
      throw Error::corrupt_input(
          "service/grid-too-large",
          "sweep grid exceeds " + std::to_string(options_.max_sweep_cells) +
              " cells; split the query");
    }
    const std::uint64_t bytes = require_bytes(body, "bytes");
    const auto workload = entry->make(bytes);
    run = report::sweep_threads_run(
        machine, *workload, thread_counts, configs,
        report::Figure(entry->info.name + " thread sweep", "threads", ""),
        sweep_options);
  }

  if (Deadline::expired(ctx.deadline)) {
    throw Error::resource(kDeadlineExceededCode,
                          "deadline exceeded after completing " +
                              std::to_string(run.stats.cells - run.stats.failed) +
                              " of " + std::to_string(run.stats.cells) +
                              " sweep cells");
  }

  Value out = Value::object();
  out.set("workload", entry->info.name);
  if (ctx.degraded) out.set("served_degraded", true);
  out.set("metric_name", entry->info.metric_name);
  out.set("figure", figure_json(run.figure));
  out.set("stats", sweep_stats_json(run.stats));
  if (!run.failures.empty()) {
    Value failures = Value::array();
    for (const report::CellFailure& f : run.failures) {
      Value one = Value::object();
      one.set("cell", f.label);
      one.set("category", to_string(f.category));
      one.set("message", f.message);
      failures.push_back(std::move(one));
    }
    out.set("failures", std::move(failures));
  }
  out.set("topology", topology_json(machine));
  return out;
}

Value PlacementService::do_stats() const {
  const report::SweepCacheStats cache = report::SweepCache::instance().stats();
  const ServiceCounters c = counters();

  Value out = Value::object();
  Value cache_json = Value::object();
  cache_json.set("hits", static_cast<double>(cache.hits));
  cache_json.set("misses", static_cast<double>(cache.misses));
  cache_json.set("evictions", static_cast<double>(cache.evictions));
  cache_json.set("coalesced", static_cast<double>(cache.coalesced));
  cache_json.set("inserts", static_cast<double>(cache.inserts));
  cache_json.set("entries", static_cast<double>(cache.entries));
  cache_json.set("capacity", static_cast<double>(cache.capacity));
  cache_json.set("shards", static_cast<double>(cache.shards));
  const std::uint64_t looked_up = cache.hits + cache.misses;
  cache_json.set("hit_rate", looked_up == 0 ? 0.0
                                            : static_cast<double>(cache.hits) /
                                                  static_cast<double>(looked_up));
  cache_json.set("profile_hits", static_cast<double>(cache.profile_hits));
  cache_json.set("profile_misses", static_cast<double>(cache.profile_misses));
  cache_json.set("profile_inserts", static_cast<double>(cache.profile_inserts));
  cache_json.set("profile_evictions", static_cast<double>(cache.profile_evictions));
  cache_json.set("profile_coalesced", static_cast<double>(cache.profile_coalesced));
  cache_json.set("profile_entries", static_cast<double>(cache.profile_entries));
  cache_json.set("profile_capacity", static_cast<double>(cache.profile_capacity));
  out.set("cache", std::move(cache_json));

  Value requests = Value::object();
  requests.set("placement", static_cast<double>(c.placement));
  requests.set("sweep", static_cast<double>(c.sweep));
  requests.set("whatif", static_cast<double>(c.whatif));
  requests.set("stats", static_cast<double>(c.stats));
  requests.set("healthz", static_cast<double>(c.healthz));
  out.set("requests", std::move(requests));

  out.set("shed", static_cast<double>(c.shed));
  out.set("errors", static_cast<double>(c.errors));
  out.set("inflight", static_cast<double>(c.inflight));
  out.set("max_inflight", static_cast<double>(options_.max_inflight));
  out.set("workers", static_cast<double>(pool_.size()));
  out.set("deadline_exceeded", static_cast<double>(c.deadline_exceeded));
  out.set("brownout_rejects", static_cast<double>(c.brownout));
  out.set("served_degraded", static_cast<double>(c.degraded));
  out.set("retry_after_ms", adaptive_retry_after_ms());

  const HealthSnapshot health = health_.snapshot();
  Value health_json = Value::object();
  health_json.set("state", to_string(health.state));
  health_json.set("rolling_p99_ms", health.p99_ms);
  health_json.set("samples", static_cast<double>(health.samples));
  health_json.set("transitions", static_cast<double>(health.transitions));
  out.set("health", std::move(health_json));

  // Replay-engine telemetry: what the sharded classification substrate has
  // done process-wide, plus the SIMD level its decompose kernels dispatch to.
  const sim::ReplayTelemetrySnapshot replay = sim::ReplayTelemetry::instance().snapshot();
  Value replay_json = Value::object();
  replay_json.set("simd_level", sim::simd::level_name(sim::simd::active_level()));
  replay_json.set("classified_blocks", static_cast<double>(replay.classified_blocks));
  replay_json.set("classified_addresses",
                  static_cast<double>(replay.classified_addresses));
  replay_json.set("replay_runs", static_cast<double>(replay.replay_runs));
  replay_json.set("replay_epochs", static_cast<double>(replay.replay_epochs));
  replay_json.set("overlapped_epochs", static_cast<double>(replay.overlapped_epochs));
  out.set("replay", std::move(replay_json));

  // Per-machine topology identity: cache entries are keyed by fingerprint
  // string alone, so a multi-profile deployment needs this table to map a
  // fingerprint back to the hierarchy it simulates.
  Value machines = Value::array();
  for (const auto& [name, machine] : machines_) {
    Value one = topology_json(machine);
    one.set("machine", name);
    machines.push_back(std::move(one));
  }
  out.set("machines", std::move(machines));
  return out;
}

Value PlacementService::do_healthz() const {
  const HealthSnapshot health = health_.snapshot();
  Value out = Value::object();
  // "ok" only while fully healthy: probes watching /healthz see the
  // brownout state the moment the monitor degrades.
  out.set("status", health.state == HealthState::Healthy ? "ok"
                                                         : to_string(health.state));
  Value health_json = Value::object();
  health_json.set("state", to_string(health.state));
  health_json.set("rolling_p99_ms", health.p99_ms);
  health_json.set("samples", static_cast<double>(health.samples));
  health_json.set("transitions", static_cast<double>(health.transitions));
  out.set("health", std::move(health_json));
  out.set("service", "knl-serve");
  out.set("machine_schema_version", kMachineSchemaVersion);
  Value machines = Value::array();
  for (const std::string& name : machine_names()) machines.push_back(name);
  out.set("machines", std::move(machines));
  Value workload_names = Value::array();
  for (const workloads::RegistryEntry& entry : workloads::registry()) {
    workload_names.push_back(entry.info.name);
  }
  out.set("workloads", std::move(workload_names));
  return out;
}

}  // namespace knl::service
