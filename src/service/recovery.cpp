#include "service/recovery.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <unistd.h>

#include "core/fault/atomic_io.hpp"
#include "report/sweep.hpp"
#include "repro/json.hpp"

namespace knl::service {

using repro::json::Value;

const char* to_string(SnapshotLoad result) {
  switch (result) {
    case SnapshotLoad::Recovered:
      return "recovered";
    case SnapshotLoad::Missing:
      return "missing";
    case SnapshotLoad::Tampered:
      return "tampered";
    case SnapshotLoad::SchemaMismatch:
      return "schema-mismatch";
  }
  return "unknown";
}

bool save_cache_snapshot(const std::string& path, std::string* error) {
  const std::string payload = report::SweepCache::instance().serialize();
  const std::string text =
      std::string(kSnapshotHeaderPrefix) + io::fnv1a_hex(payload) + "\n" + payload;
  // The retrying write path: crash-safe (tmp + fsync + rename) and, when a
  // fault plan targets json-write, exercised by the same chaos drills as
  // every other artifact.
  return io::write_file_with_retry(path, text, error);
}

SnapshotLoad load_cache_snapshot(const std::string& path, std::string* detail) {
  std::string error;
  const auto text = io::read_file_with_retry(path, &error);
  if (!text.has_value()) {
    if (detail != nullptr) *detail = "no snapshot at " + path + " (" + error + ")";
    return SnapshotLoad::Missing;
  }
  const std::size_t prefix_len = std::strlen(kSnapshotHeaderPrefix);
  const std::size_t newline = text->find('\n');
  if (newline == std::string::npos ||
      text->compare(0, prefix_len, kSnapshotHeaderPrefix) != 0) {
    if (detail != nullptr) *detail = "snapshot header damaged";
    return SnapshotLoad::Tampered;
  }
  const std::string recorded = text->substr(prefix_len, newline - prefix_len);
  const std::string payload = text->substr(newline + 1);
  const std::string actual = io::fnv1a_hex(payload);
  if (recorded != actual) {
    if (detail != nullptr) {
      *detail = "snapshot digest mismatch: header " + recorded + ", payload " + actual;
    }
    return SnapshotLoad::Tampered;
  }
  const std::size_t before = report::SweepCache::instance().size();
  if (!report::SweepCache::instance().deserialize(payload)) {
    if (detail != nullptr) {
      *detail = "snapshot intact but written under another machine schema";
    }
    return SnapshotLoad::SchemaMismatch;
  }
  if (detail != nullptr) {
    *detail = "recovered " +
              std::to_string(report::SweepCache::instance().size() - before) +
              " new entries (" +
              std::to_string(report::SweepCache::instance().size()) + " resident)";
  }
  return SnapshotLoad::Recovered;
}

// ---------------------------------------------------------------------------
// RequestJournal
// ---------------------------------------------------------------------------
RequestJournal::~RequestJournal() { close(); }

bool RequestJournal::open(const std::string& path, bool truncate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), truncate ? "w" : "a");
  return file_ != nullptr;
}

void RequestJournal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool RequestJournal::is_open() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return file_ != nullptr;
}

std::uint64_t RequestJournal::begin(const std::string& method,
                                    const std::string& target,
                                    const std::string& body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return 0;
  const std::uint64_t seq = next_seq_++;
  Value record = Value::object();
  record.set("seq", static_cast<double>(seq));
  record.set("op", "begin");
  record.set("method", method);
  record.set("target", target);
  record.set("digest", io::fnv1a_hex(body));
  record.set("body", body);
  const std::string line = record.dump(0) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ::fsync(::fileno(file_));
  return seq;
}

void RequestJournal::end(std::uint64_t seq) {
  if (seq == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  Value record = Value::object();
  record.set("seq", static_cast<double>(seq));
  record.set("op", "end");
  const std::string line = record.dump(0) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ::fsync(::fileno(file_));
}

std::vector<PendingRequest> RequestJournal::pending(const std::string& path) {
  std::vector<PendingRequest> out;
  std::string error;
  const auto text = io::read_text_file(path, &error);
  if (!text.has_value()) return out;

  std::map<std::uint64_t, PendingRequest> open_requests;
  std::size_t pos = 0;
  while (pos < text->size()) {
    std::size_t end = text->find('\n', pos);
    if (end == std::string::npos) end = text->size();
    const std::string line = text->substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    // A crash can tear the final line mid-write; an unparsable record is
    // skipped, never fatal — the request it described simply re-runs.
    const auto record = Value::parse(line);
    if (!record.has_value() || !record->is_object()) continue;
    const Value* seq_field = record->find("seq");
    const Value* op = record->find("op");
    if (seq_field == nullptr || op == nullptr) continue;
    const auto seq = static_cast<std::uint64_t>(seq_field->as_number());
    if (seq == 0) continue;
    if (op->as_string() == "end") {
      open_requests.erase(seq);
      continue;
    }
    if (op->as_string() != "begin") continue;
    const Value* method = record->find("method");
    const Value* target = record->find("target");
    const Value* body = record->find("body");
    const Value* digest = record->find("digest");
    if (method == nullptr || target == nullptr || body == nullptr ||
        digest == nullptr) {
      continue;
    }
    // Integrity check mirroring the snapshot digest: a torn body reads as a
    // digest mismatch and the record is dropped.
    if (io::fnv1a_hex(body->as_string()) != digest->as_string()) continue;
    PendingRequest request;
    request.seq = seq;
    request.method = method->as_string();
    request.target = target->as_string();
    request.body = body->as_string();
    open_requests.emplace(seq, std::move(request));
  }
  out.reserve(open_requests.size());
  for (auto& [seq, request] : open_requests) out.push_back(std::move(request));
  return out;
}

// ---------------------------------------------------------------------------
// SnapshotDaemon
// ---------------------------------------------------------------------------
SnapshotDaemon::SnapshotDaemon(std::string path, double interval_ms)
    : path_(std::move(path)),
      interval_ms_(interval_ms),
      thread_([this] { loop(); }) {}

SnapshotDaemon::~SnapshotDaemon() { stop(); }

void SnapshotDaemon::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string SnapshotDaemon::last_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void SnapshotDaemon::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval =
      std::chrono::duration<double, std::milli>(interval_ms_ > 0 ? interval_ms_ : 1.0);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    std::string error;
    const bool ok = save_cache_snapshot(path_, &error);
    if (ok) snapshots_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    last_error_ = ok ? std::string() : error;
  }
}

}  // namespace knl::service
