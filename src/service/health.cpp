#include "service/health.hpp"

#include <algorithm>
#include <cstdio>

namespace knl::service {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::Healthy:
      return "healthy";
    case HealthState::Degraded:
      return "degraded";
    case HealthState::Shedding:
      return "shedding";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {
  ring_.resize(std::max<std::size_t>(1, options_.window), 0.0);
}

void HealthMonitor::set_transition_log(TransitionLog log) {
  const std::lock_guard<std::mutex> lock(mutex_);
  log_ = std::move(log);
}

void HealthMonitor::record(double latency_ms, std::size_t inflight,
                           std::size_t max_inflight) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = latency_ms;
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  evaluate_locked(inflight, max_inflight);
}

void HealthMonitor::note_queue(std::size_t inflight, std::size_t max_inflight) {
  const std::lock_guard<std::mutex> lock(mutex_);
  evaluate_locked(inflight, max_inflight);
}

double HealthMonitor::p99_locked() const {
  if (count_ < options_.min_samples) return 0.0;
  // nth_element over a copy of the live window: ~window doubles, cheap next
  // to the request that produced the sample.
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<std::ptrdiff_t>(count_));
  const auto nth = static_cast<std::size_t>(
      static_cast<double>(count_ - 1) * 0.99);
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(nth), sorted.end());
  return sorted[nth];
}

HealthState HealthMonitor::desired_locked(double p99, double queue_fraction,
                                          double scale) const {
  if (p99 >= options_.shedding_p99_ms * scale ||
      queue_fraction >= options_.shedding_queue_fraction * scale) {
    return HealthState::Shedding;
  }
  if (p99 >= options_.degraded_p99_ms * scale ||
      queue_fraction >= options_.degraded_queue_fraction * scale) {
    return HealthState::Degraded;
  }
  return HealthState::Healthy;
}

void HealthMonitor::transition_locked(HealthState to, const std::string& why) {
  const HealthState from = state_.load(std::memory_order_relaxed);
  state_.store(to, std::memory_order_relaxed);
  ++transitions_;
  last_transition_ = Clock::now();
  // Fresh probation window: the new state is judged on its own traffic.
  count_ = 0;
  next_ = 0;
  if (log_) log_(from, to, why);
}

void HealthMonitor::evaluate_locked(std::size_t inflight, std::size_t max_inflight) {
  if (pinned_) return;
  const double p99 = p99_locked();
  const double queue_fraction =
      max_inflight == 0 ? 1.0
                        : static_cast<double>(inflight) /
                              static_cast<double>(max_inflight);
  const HealthState current = state_.load(std::memory_order_relaxed);

  // Escalation: immediate.
  const HealthState up = desired_locked(p99, queue_fraction, 1.0);
  if (static_cast<int>(up) > static_cast<int>(current)) {
    char why[160];
    std::snprintf(why, sizeof(why),
                  "p99 %.1f ms, queue %.0f%% of max_inflight", p99,
                  queue_fraction * 100.0);
    transition_locked(up, why);
    return;
  }

  // De-escalation: one level at a time, only past the dwell, and only when
  // the metrics clear the hysteresis band (recover_fraction of threshold).
  if (static_cast<int>(current) == 0) return;
  const double dwell_ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - last_transition_)
                              .count();
  if (dwell_ms < options_.min_dwell_ms) return;
  const HealthState relaxed =
      desired_locked(p99, queue_fraction, options_.recover_fraction);
  if (static_cast<int>(relaxed) < static_cast<int>(current)) {
    const auto down = static_cast<HealthState>(static_cast<int>(current) - 1);
    char why[160];
    std::snprintf(why, sizeof(why),
                  "recovered: p99 %.1f ms, queue %.0f%% of max_inflight", p99,
                  queue_fraction * 100.0);
    transition_locked(down, why);
  }
}

HealthSnapshot HealthMonitor::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot snap;
  snap.state = state_.load(std::memory_order_relaxed);
  snap.p99_ms = p99_locked();
  snap.samples = count_;
  snap.transitions = transitions_;
  return snap;
}

void HealthMonitor::force_state_for_testing(HealthState state, bool pin) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pinned_ = pin;
  state_.store(state, std::memory_order_relaxed);
}

}  // namespace knl::service
