// PlacementService: the advisor, the sweep engine and the what-if runner as
// a long-running concurrent query service (ROADMAP item 1 — the "millions
// of users" direction).
//
// The service is transport-agnostic: handle() takes a (method, target,
// JSON body) triple and returns a (status, JSON body) pair, so the same
// engine serves the blocking-socket HTTP front end (service/http.hpp), the
// in-process bench harness (bench_service) and the unit tests. Queries are
// validated against the machine and workload registries, executed on the
// service's ThreadPool, answered from the process-wide sharded LRU
// SweepCache (report/sweep.hpp) — identical concurrent queries coalesce
// onto one computation — and load-shed with a 429-style reject once the
// in-flight gauge passes the configured bound.
//
// Endpoints and their JSON schemas are documented in docs/SERVICE.md; the
// error-code mapping follows the knl::Error taxonomy (core/fault/error.hpp):
// CorruptInput -> 400, Resource -> 429 (+ retry_after_ms), Transient -> 503,
// Internal -> 500.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/thread_pool.hpp"
#include "report/sweep.hpp"
#include "repro/json.hpp"
#include "service/health.hpp"

namespace knl::service {

class RequestJournal;  // service/recovery.hpp

struct ServiceOptions {
  /// Query-execution workers (the service's ThreadPool): 0 = one per
  /// hardware thread. Connection threads hand queries to this pool, so at
  /// most `workers` queries compute at once regardless of socket count.
  int workers = 0;
  /// Sweep cell-evaluation workers *per query* (SweepOptions::jobs). The
  /// default 1 keeps each sweep on its own pool worker; raise it only for
  /// a low-concurrency deployment that wants single-query latency.
  int sweep_jobs = 1;
  /// Load-shedding bound: queries admitted (queued or computing) at once.
  /// At the bound, new work is rejected as knl::Error Resource -> HTTP 429.
  std::size_t max_inflight = 1024;
  /// Retry-After hint attached to 429 rejections, in milliseconds.
  int retry_after_ms = 50;
  /// SweepCache capacity bound (entries); applied at construction.
  std::size_t cache_capacity = report::SweepCache::kDefaultCapacity;
  /// Largest sweep grid (cells = sizes-or-threads x configs) one query may
  /// request; larger grids are rejected as CorruptInput.
  std::size_t max_sweep_cells = 512;
  /// Server-side default request budget (ms), applied when a request
  /// carries neither an X-Deadline-Ms header nor a `deadline_ms` body
  /// field. Checked at admission, at pool-dequeue and between sweep cells;
  /// exhaustion answers 504 with partial-progress detail. 0 disables.
  double default_deadline_ms = 30000.0;
  /// Brownout state machine thresholds (service/health.hpp).
  HealthOptions health{};
};

/// One routed reply: HTTP-style status plus the JSON body to serialize.
struct ServiceResponse {
  int status = 200;
  repro::json::Value body;
};

/// Per-endpoint request counters plus the gauges /stats reports.
struct ServiceCounters {
  std::uint64_t placement = 0;
  std::uint64_t sweep = 0;
  std::uint64_t whatif = 0;
  std::uint64_t stats = 0;
  std::uint64_t healthz = 0;
  std::uint64_t shed = 0;        ///< 429 rejections (load shedding)
  std::uint64_t errors = 0;      ///< non-shed error responses (4xx/5xx)
  std::uint64_t inflight = 0;    ///< queries admitted and not yet answered
  std::uint64_t deadline_exceeded = 0;  ///< 504 responses (budget exhausted)
  std::uint64_t brownout = 0;    ///< 429 rejections from the Shedding state
  std::uint64_t degraded = 0;    ///< queries served in Degraded (cache-only) mode
};

class PlacementService {
 public:
  explicit PlacementService(ServiceOptions options = {});

  /// Route one request. `body` is ignored by the GET endpoints. Never
  /// throws: every failure becomes an error-shaped JSON response.
  /// `deadline_ms` is the transport-carried budget (the X-Deadline-Ms
  /// header); <= 0 defers to the body's `deadline_ms` field, then to
  /// options().default_deadline_ms.
  [[nodiscard]] ServiceResponse handle(const std::string& method,
                                       const std::string& target,
                                       const repro::json::Value& body,
                                       double deadline_ms = 0.0);

  /// Same, parsing `body_text` first (empty text = null body). A body that
  /// is not valid JSON is a CorruptInput -> 400.
  [[nodiscard]] ServiceResponse handle_text(const std::string& method,
                                            const std::string& target,
                                            const std::string& body_text,
                                            double deadline_ms = 0.0);

  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::vector<std::string> machine_names() const;
  [[nodiscard]] ServiceCounters counters() const;

  /// The brownout state machine: knl-serve wires its transition log here;
  /// /healthz and /stats report its snapshot; tests may pin its state.
  [[nodiscard]] HealthMonitor& health() noexcept { return health_; }

  /// Arm the in-flight request journal (service/recovery.hpp): every
  /// admitted POST writes a begin record, every completion an end record,
  /// so a crashed daemon can replay what it lost. The journal must outlive
  /// the service; nullptr disarms.
  void set_journal(RequestJournal* journal) noexcept { journal_ = journal; }

 private:
  /// Request-scoped execution context threaded through the POST queries.
  struct QueryContext {
    std::shared_ptr<const Deadline> deadline;
    bool degraded = false;  ///< health was Degraded at admission
  };

  [[nodiscard]] ServiceResponse dispatch(const std::string& method,
                                         const std::string& target,
                                         const repro::json::Value& body,
                                         double deadline_ms);
  [[nodiscard]] repro::json::Value do_placement(const repro::json::Value& body,
                                                const QueryContext& ctx) const;
  [[nodiscard]] repro::json::Value do_whatif(const repro::json::Value& body,
                                             const QueryContext& ctx) const;
  [[nodiscard]] repro::json::Value do_sweep(const repro::json::Value& body,
                                            const QueryContext& ctx) const;
  [[nodiscard]] repro::json::Value do_stats() const;
  [[nodiscard]] repro::json::Value do_healthz() const;

  /// Retry-After hint scaled by queue depth: base at an idle service,
  /// base * 9 at a full admission window — a saturated service asks
  /// clients to back off longer instead of inviting an immediate stampede.
  [[nodiscard]] int adaptive_retry_after_ms() const;

  /// Registry lookup; throws CorruptInput naming the known machines.
  [[nodiscard]] const Machine& find_machine(const repro::json::Value& body) const;

  ServiceOptions options_;
  /// The machine-profile registry: every named MachineConfig preset,
  /// instantiated once (Machine is immutable and its run() is const).
  std::map<std::string, Machine> machines_;
  core::ThreadPool pool_;

  std::atomic<std::uint64_t> placement_{0};
  std::atomic<std::uint64_t> sweep_{0};
  std::atomic<std::uint64_t> whatif_{0};
  std::atomic<std::uint64_t> stats_{0};
  std::atomic<std::uint64_t> healthz_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> brownout_{0};
  std::atomic<std::uint64_t> degraded_{0};
  HealthMonitor health_;
  std::atomic<RequestJournal*> journal_{nullptr};
};

}  // namespace knl::service
