// PlacementService: the advisor, the sweep engine and the what-if runner as
// a long-running concurrent query service (ROADMAP item 1 — the "millions
// of users" direction).
//
// The service is transport-agnostic: handle() takes a (method, target,
// JSON body) triple and returns a (status, JSON body) pair, so the same
// engine serves the blocking-socket HTTP front end (service/http.hpp), the
// in-process bench harness (bench_service) and the unit tests. Queries are
// validated against the machine and workload registries, executed on the
// service's ThreadPool, answered from the process-wide sharded LRU
// SweepCache (report/sweep.hpp) — identical concurrent queries coalesce
// onto one computation — and load-shed with a 429-style reject once the
// in-flight gauge passes the configured bound.
//
// Endpoints and their JSON schemas are documented in docs/SERVICE.md; the
// error-code mapping follows the knl::Error taxonomy (core/fault/error.hpp):
// CorruptInput -> 400, Resource -> 429 (+ retry_after_ms), Transient -> 503,
// Internal -> 500.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/thread_pool.hpp"
#include "report/sweep.hpp"
#include "repro/json.hpp"

namespace knl::service {

struct ServiceOptions {
  /// Query-execution workers (the service's ThreadPool): 0 = one per
  /// hardware thread. Connection threads hand queries to this pool, so at
  /// most `workers` queries compute at once regardless of socket count.
  int workers = 0;
  /// Sweep cell-evaluation workers *per query* (SweepOptions::jobs). The
  /// default 1 keeps each sweep on its own pool worker; raise it only for
  /// a low-concurrency deployment that wants single-query latency.
  int sweep_jobs = 1;
  /// Load-shedding bound: queries admitted (queued or computing) at once.
  /// At the bound, new work is rejected as knl::Error Resource -> HTTP 429.
  std::size_t max_inflight = 1024;
  /// Retry-After hint attached to 429 rejections, in milliseconds.
  int retry_after_ms = 50;
  /// SweepCache capacity bound (entries); applied at construction.
  std::size_t cache_capacity = report::SweepCache::kDefaultCapacity;
  /// Largest sweep grid (cells = sizes-or-threads x configs) one query may
  /// request; larger grids are rejected as CorruptInput.
  std::size_t max_sweep_cells = 512;
};

/// One routed reply: HTTP-style status plus the JSON body to serialize.
struct ServiceResponse {
  int status = 200;
  repro::json::Value body;
};

/// Per-endpoint request counters plus the gauges /stats reports.
struct ServiceCounters {
  std::uint64_t placement = 0;
  std::uint64_t sweep = 0;
  std::uint64_t whatif = 0;
  std::uint64_t stats = 0;
  std::uint64_t healthz = 0;
  std::uint64_t shed = 0;        ///< 429 rejections (load shedding)
  std::uint64_t errors = 0;      ///< non-shed error responses (4xx/5xx)
  std::uint64_t inflight = 0;    ///< queries admitted and not yet answered
};

class PlacementService {
 public:
  explicit PlacementService(ServiceOptions options = {});

  /// Route one request. `body` is ignored by the GET endpoints. Never
  /// throws: every failure becomes an error-shaped JSON response.
  [[nodiscard]] ServiceResponse handle(const std::string& method,
                                       const std::string& target,
                                       const repro::json::Value& body);

  /// Same, parsing `body_text` first (empty text = null body). A body that
  /// is not valid JSON is a CorruptInput -> 400.
  [[nodiscard]] ServiceResponse handle_text(const std::string& method,
                                            const std::string& target,
                                            const std::string& body_text);

  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::vector<std::string> machine_names() const;
  [[nodiscard]] ServiceCounters counters() const;

 private:
  [[nodiscard]] ServiceResponse dispatch(const std::string& method,
                                         const std::string& target,
                                         const repro::json::Value& body);
  [[nodiscard]] repro::json::Value do_placement(const repro::json::Value& body) const;
  [[nodiscard]] repro::json::Value do_whatif(const repro::json::Value& body) const;
  [[nodiscard]] repro::json::Value do_sweep(const repro::json::Value& body) const;
  [[nodiscard]] repro::json::Value do_stats() const;
  [[nodiscard]] repro::json::Value do_healthz() const;

  /// Registry lookup; throws CorruptInput naming the known machines.
  [[nodiscard]] const Machine& find_machine(const repro::json::Value& body) const;

  ServiceOptions options_;
  /// The machine-profile registry: every named MachineConfig preset,
  /// instantiated once (Machine is immutable and its run() is const).
  std::map<std::string, Machine> machines_;
  core::ThreadPool pool_;

  std::atomic<std::uint64_t> placement_{0};
  std::atomic<std::uint64_t> sweep_{0};
  std::atomic<std::uint64_t> whatif_{0};
  std::atomic<std::uint64_t> stats_{0};
  std::atomic<std::uint64_t> healthz_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> inflight_{0};
};

}  // namespace knl::service
