// Trace analyzer: derive an application characterization from an observed
// address stream.
//
// The paper's guidelines require knowing an application's access pattern,
// footprint and threading behaviour. For codes where that is not obvious,
// this module ingests a (sampled) address trace — e.g. recorded from an
// instrumented kernel at test scale — and computes the quantities the
// Advisor and the timing model consume: footprint, stride mix, a regularity
// score, reuse-distance-based cache affinity, and a synthesized AccessPhase.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>

#include "core/advisor.hpp"
#include "sim/reuse_profile.hpp"
#include "trace/access_phase.hpp"

namespace knl::trace {

struct TraceStats {
  std::uint64_t accesses = 0;
  std::uint64_t footprint_bytes = 0;      ///< distinct lines * line size
  std::uint64_t page_footprint_bytes = 0; ///< distinct pages * page size
  /// Fraction of accesses whose stride from the previous access is one of
  /// the dominant strides (|stride| <= 2 lines counts as sequential).
  double sequential_fraction = 0.0;
  double dominant_stride_fraction = 0.0;
  std::int64_t dominant_stride = 0;
  /// Estimated hit probability in a cache of the given capacity, from the
  /// sampled reuse-distance distribution.
  double l2_reuse_hit = 0.0;
  /// Overall regularity in [0,1] (1 = prefetchable stream).
  double regularity = 0.0;
};

/// Streaming trace collector. Feed addresses via record(); finalize with
/// analyze(). Holds exact distinct-line sets, so intended for test-scale
/// traces (millions of accesses), optionally downsampled by the caller.
class TraceAnalyzer {
 public:
  struct Config {
    /// Cache-line granule; must be a power of two (the reuse profile's
    /// decompose kernels require shift/mask arithmetic).
    std::uint64_t line_bytes = 64;
    std::uint64_t page_bytes = 2 * 1024 * 1024;
    /// Cache capacity used for the reuse-distance hit estimate (default:
    /// aggregate L2 of the modelled node).
    std::uint64_t reuse_cache_bytes = 32ull * 1024 * 1024;
    /// Sample 1/reuse_sample_every lines for reuse distance (cost control;
    /// 1 = exact).
    std::uint64_t reuse_sample_every = 8;
  };

  TraceAnalyzer();  // default configuration
  explicit TraceAnalyzer(Config config);

  /// Record one access (byte address).
  void record(std::uint64_t addr);

  /// Number of accesses recorded so far.
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

  /// Compute statistics over everything recorded so far.
  [[nodiscard]] TraceStats analyze() const;

  /// Synthesize an AccessPhase equivalent to the recorded behaviour,
  /// scaled to `scale_factor` times the observed traffic/footprint (so a
  /// test-scale trace can stand in for a production-size run).
  [[nodiscard]] AccessPhase to_phase(const std::string& name,
                                     double scale_factor = 1.0) const;

  /// Characterization for the Advisor.
  [[nodiscard]] AppCharacteristics to_characteristics(const std::string& name,
                                                      double scale_factor = 1.0) const;

  void reset();

 private:
  Config config_;
  std::uint64_t accesses_ = 0;
  std::uint64_t last_addr_ = 0;
  bool have_last_ = false;
  std::unordered_set<std::uint64_t> lines_;
  std::unordered_set<std::uint64_t> pages_;
  std::map<std::int64_t, std::uint64_t> stride_histogram_;
  std::uint64_t sequential_hits_ = 0;
  /// Sampled stack-distance histogram over the recorded stream — the same
  /// single-pass engine the capacity sweeps use (sim/reuse_profile.hpp), so
  /// l2_reuse_hit is an exact-LRU estimate, not an ad-hoc temporal one.
  sim::ReuseProfile reuse_;
};

}  // namespace knl::trace
