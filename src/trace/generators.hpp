// Address-stream generators.
//
// These replay concrete address streams into the exact simulators (CacheSim,
// McdramCacheSim, TlbSim) so the analytic hit-rate expressions used at paper
// scale can be validated against ground truth at test scale. They are also
// used by the latency-probe workload to build real pointer-chase buffers.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

namespace knl::trace {

using AddressVisitor = std::function<void(std::uint64_t addr)>;

/// `sweeps` sequential line-granular passes over [base, base+bytes).
void generate_sweep(std::uint64_t base, std::uint64_t bytes, std::uint64_t line_bytes,
                    int sweeps, const AddressVisitor& visit);

/// Constant-stride walk over [base, base+bytes), repeated `sweeps` times.
void generate_strided(std::uint64_t base, std::uint64_t bytes, std::uint64_t stride_bytes,
                      int sweeps, const AddressVisitor& visit);

/// `count` uniform-random addresses within [base, base+bytes).
void generate_uniform_random(std::uint64_t base, std::uint64_t bytes, std::uint64_t count,
                             std::uint64_t seed, const AddressVisitor& visit);

/// Build a random-permutation pointer-chase order of `n` slots (each slot
/// points to the next index in a single Hamiltonian cycle, Sattolo's
/// algorithm) — the access order a chasing probe would follow.
[[nodiscard]] std::vector<std::uint32_t> build_chase_permutation(std::uint32_t n,
                                                                 std::uint64_t seed);

/// Replay `count` steps of the chase over slots of `slot_bytes` at `base`.
void generate_chase(std::uint64_t base, const std::vector<std::uint32_t>& next,
                    std::uint64_t slot_bytes, std::uint64_t count,
                    const AddressVisitor& visit);

}  // namespace knl::trace
