// Address-stream generators.
//
// These replay concrete address streams into the exact simulators (CacheSim,
// McdramCacheSim, TlbSim) so the analytic hit-rate expressions used at paper
// scale can be validated against ground truth at test scale. They are also
// used by the latency-probe workload to build real pointer-chase buffers.
//
// Two APIs:
//   - chunked (the hot path): stateful generators fill caller-owned
//     std::uint64_t buffers ~4 K addresses at a time via next_chunk(), and
//     for_each_address() drains a generator through a *templated* visitor —
//     no per-address std::function indirection anywhere;
//   - callback (legacy): the generate_* free functions keep the original
//     per-address AddressVisitor signature as thin adapters over the
//     chunked generators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

namespace knl::trace {

using AddressVisitor = std::function<void(std::uint64_t addr)>;

/// Default chunk capacity: 4 K addresses = 32 KiB, L1-resident so the
/// generator->simulator hand-off stays in cache.
inline constexpr std::size_t kAddressChunk = 4096;

/// `sweeps` sequential line-granular passes over [base, base+bytes).
class SweepGenerator {
 public:
  SweepGenerator(std::uint64_t base, std::uint64_t bytes, std::uint64_t line_bytes,
                 int sweeps);
  /// Fill out[0..capacity) with the next addresses; returns the count
  /// written, 0 once the stream is exhausted.
  std::size_t next_chunk(std::uint64_t* out, std::size_t capacity);

 private:
  std::uint64_t base_;
  std::uint64_t bytes_;
  std::uint64_t line_bytes_;
  std::uint64_t offset_ = 0;
  int sweeps_remaining_;
};

/// Constant-stride walk over [base, base+bytes), repeated `sweeps` times.
class StridedGenerator {
 public:
  StridedGenerator(std::uint64_t base, std::uint64_t bytes, std::uint64_t stride_bytes,
                   int sweeps);
  std::size_t next_chunk(std::uint64_t* out, std::size_t capacity);

 private:
  std::uint64_t base_;
  std::uint64_t bytes_;
  std::uint64_t stride_bytes_;
  std::uint64_t offset_ = 0;
  int sweeps_remaining_;
};

/// `count` uniform-random addresses within [base, base+bytes).
class UniformRandomGenerator {
 public:
  UniformRandomGenerator(std::uint64_t base, std::uint64_t bytes, std::uint64_t count,
                         std::uint64_t seed);
  std::size_t next_chunk(std::uint64_t* out, std::size_t capacity);

 private:
  std::uint64_t base_;
  std::uint64_t remaining_;
  std::mt19937_64 rng_;
  std::uniform_int_distribution<std::uint64_t> dist_;
};

/// Replay steps of a pointer chase over slots of `slot_bytes` at `base`.
/// The permutation is borrowed, not copied — it must outlive the generator.
class ChaseGenerator {
 public:
  ChaseGenerator(std::uint64_t base, const std::vector<std::uint32_t>& next,
                 std::uint64_t slot_bytes, std::uint64_t count);
  std::size_t next_chunk(std::uint64_t* out, std::size_t capacity);

 private:
  std::uint64_t base_;
  const std::uint32_t* next_;
  std::uint32_t slots_;
  std::uint64_t slot_bytes_;
  std::uint64_t remaining_;
  std::uint32_t cursor_ = 0;
};

/// Drain a chunked generator through a templated visitor (inlined per
/// address — the replacement for the std::function path in hot loops).
template <typename Generator, typename Visitor>
void for_each_address(Generator& gen, Visitor&& visit) {
  std::uint64_t buffer[kAddressChunk];
  for (std::size_t n; (n = gen.next_chunk(buffer, kAddressChunk)) != 0;) {
    for (std::size_t i = 0; i < n; ++i) visit(buffer[i]);
  }
}

/// Collect a generator's whole stream into a vector (test/bench helper).
template <typename Generator>
[[nodiscard]] std::vector<std::uint64_t> collect_addresses(Generator& gen) {
  std::vector<std::uint64_t> out;
  for_each_address(gen, [&](std::uint64_t a) { out.push_back(a); });
  return out;
}

// --------------------------------------------------------------------------
// Legacy per-address callback API (thin adapters over the generators).
// --------------------------------------------------------------------------

/// `sweeps` sequential line-granular passes over [base, base+bytes).
void generate_sweep(std::uint64_t base, std::uint64_t bytes, std::uint64_t line_bytes,
                    int sweeps, const AddressVisitor& visit);

/// Constant-stride walk over [base, base+bytes), repeated `sweeps` times.
void generate_strided(std::uint64_t base, std::uint64_t bytes, std::uint64_t stride_bytes,
                      int sweeps, const AddressVisitor& visit);

/// `count` uniform-random addresses within [base, base+bytes).
void generate_uniform_random(std::uint64_t base, std::uint64_t bytes, std::uint64_t count,
                             std::uint64_t seed, const AddressVisitor& visit);

/// Build a random-permutation pointer-chase order of `n` slots (each slot
/// points to the next index in a single Hamiltonian cycle, Sattolo's
/// algorithm) — the access order a chasing probe would follow.
[[nodiscard]] std::vector<std::uint32_t> build_chase_permutation(std::uint32_t n,
                                                                 std::uint64_t seed);

/// Replay `count` steps of the chase over slots of `slot_bytes` at `base`.
void generate_chase(std::uint64_t base, const std::vector<std::uint32_t>& next,
                    std::uint64_t slot_bytes, std::uint64_t count,
                    const AddressVisitor& visit);

}  // namespace knl::trace
