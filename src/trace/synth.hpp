// Deterministic trace synthesis from an AccessProfile.
//
// The single-pass sweep engine (report/sweep.hpp SweepPlanner) and the
// per-cell reference simulator both need a concrete address stream standing
// in for a workload's memory behaviour. This module realizes each phase of
// an AccessProfile with the trace generators (trace/generators.hpp) —
// sequential sweeps, constant strides, uniform-random draws, pointer
// chases — at a bounded, budgeted scale, so a paper-scale profile yields a
// test-scale trace in milliseconds.
//
// Determinism contract: the stream is a pure function of (profile fields,
// SynthOptions). Same inputs -> bit-identical addresses, which is what lets
// profiling passes be fingerprinted and cached (SweepCache) and lets the
// single-pass and per-cell engines replay the *same* trace.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/profile.hpp"

namespace knl::trace {

struct SynthOptions {
  /// Hard budget on emitted addresses; each phase gets a proportional quota
  /// (its stream is prefix-truncated at the quota, never reordered).
  std::uint64_t max_addresses = 1ull << 22;
  /// Seed for the random/chase phases (mixed with the phase index, so two
  /// random phases do not replay the same draw sequence).
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  friend bool operator==(const SynthOptions&, const SynthOptions&) = default;
};

/// Materialize the profile's address stream: phases in order, each starting
/// at byte address 0 (phases of one workload share the resident buffers,
/// matching how the analytic model treats the footprint).
[[nodiscard]] std::vector<std::uint64_t> synthesize_trace(
    const AccessProfile& profile, const SynthOptions& options = {});

}  // namespace knl::trace
