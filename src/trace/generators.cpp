#include "trace/generators.hpp"

#include <stdexcept>

namespace knl::trace {

SweepGenerator::SweepGenerator(std::uint64_t base, std::uint64_t bytes,
                               std::uint64_t line_bytes, int sweeps)
    : base_(base), bytes_(bytes), line_bytes_(line_bytes), sweeps_remaining_(sweeps) {
  if (line_bytes_ == 0) throw std::invalid_argument("generate_sweep: line_bytes == 0");
  if (bytes_ == 0) sweeps_remaining_ = 0;  // zero-byte region: empty stream
}

std::size_t SweepGenerator::next_chunk(std::uint64_t* out, std::size_t capacity) {
  std::size_t n = 0;
  while (n < capacity && sweeps_remaining_ > 0) {
    out[n++] = base_ + offset_;
    offset_ += line_bytes_;
    if (offset_ >= bytes_) {
      offset_ = 0;
      --sweeps_remaining_;
    }
  }
  return n;
}

StridedGenerator::StridedGenerator(std::uint64_t base, std::uint64_t bytes,
                                   std::uint64_t stride_bytes, int sweeps)
    : base_(base), bytes_(bytes), stride_bytes_(stride_bytes), sweeps_remaining_(sweeps) {
  if (stride_bytes_ == 0) throw std::invalid_argument("generate_strided: stride == 0");
  if (bytes_ == 0) sweeps_remaining_ = 0;
}

std::size_t StridedGenerator::next_chunk(std::uint64_t* out, std::size_t capacity) {
  std::size_t n = 0;
  while (n < capacity && sweeps_remaining_ > 0) {
    out[n++] = base_ + offset_;
    offset_ += stride_bytes_;
    if (offset_ >= bytes_) {
      offset_ = 0;
      --sweeps_remaining_;
    }
  }
  return n;
}

UniformRandomGenerator::UniformRandomGenerator(std::uint64_t base, std::uint64_t bytes,
                                               std::uint64_t count, std::uint64_t seed)
    : base_(base), remaining_(count), rng_(seed), dist_(0, bytes == 0 ? 0 : bytes - 1) {
  if (bytes == 0) throw std::invalid_argument("generate_uniform_random: empty range");
}

std::size_t UniformRandomGenerator::next_chunk(std::uint64_t* out, std::size_t capacity) {
  std::size_t n = 0;
  while (n < capacity && remaining_ > 0) {
    out[n++] = base_ + dist_(rng_);
    --remaining_;
  }
  return n;
}

ChaseGenerator::ChaseGenerator(std::uint64_t base, const std::vector<std::uint32_t>& next,
                               std::uint64_t slot_bytes, std::uint64_t count)
    : base_(base),
      next_(next.data()),
      slots_(static_cast<std::uint32_t>(next.size())),
      slot_bytes_(slot_bytes),
      remaining_(count) {
  if (next.empty()) throw std::invalid_argument("generate_chase: empty permutation");
}

std::size_t ChaseGenerator::next_chunk(std::uint64_t* out, std::size_t capacity) {
  std::size_t n = 0;
  std::uint32_t cur = cursor_;
  while (n < capacity && remaining_ > 0) {
    out[n++] = base_ + static_cast<std::uint64_t>(cur) * slot_bytes_;
    cur = next_[cur];
    --remaining_;
  }
  cursor_ = cur;
  return n;
}

// --------------------------------------------------------------------------
// Legacy callback adapters.
// --------------------------------------------------------------------------

void generate_sweep(std::uint64_t base, std::uint64_t bytes, std::uint64_t line_bytes,
                    int sweeps, const AddressVisitor& visit) {
  SweepGenerator gen(base, bytes, line_bytes, sweeps);
  for_each_address(gen, visit);
}

void generate_strided(std::uint64_t base, std::uint64_t bytes, std::uint64_t stride_bytes,
                      int sweeps, const AddressVisitor& visit) {
  StridedGenerator gen(base, bytes, stride_bytes, sweeps);
  for_each_address(gen, visit);
}

void generate_uniform_random(std::uint64_t base, std::uint64_t bytes, std::uint64_t count,
                             std::uint64_t seed, const AddressVisitor& visit) {
  UniformRandomGenerator gen(base, bytes, count, seed);
  for_each_address(gen, visit);
}

std::vector<std::uint32_t> build_chase_permutation(std::uint32_t n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("build_chase_permutation: need >= 2 slots");
  // Sattolo's algorithm yields a uniformly random single-cycle permutation:
  // following next[] visits every slot exactly once before returning, so the
  // chase cannot short-cycle and defeat the latency measurement.
  std::vector<std::uint32_t> next(n);
  for (std::uint32_t i = 0; i < n; ++i) next[i] = i;
  std::mt19937_64 rng(seed);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::uniform_int_distribution<std::uint32_t> dist(0, i - 1);
    std::swap(next[i], next[dist(rng)]);
  }
  return next;
}

void generate_chase(std::uint64_t base, const std::vector<std::uint32_t>& next,
                    std::uint64_t slot_bytes, std::uint64_t count,
                    const AddressVisitor& visit) {
  ChaseGenerator gen(base, next, slot_bytes, count);
  for_each_address(gen, visit);
}

}  // namespace knl::trace
