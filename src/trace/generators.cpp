#include "trace/generators.hpp"

#include <stdexcept>

namespace knl::trace {

void generate_sweep(std::uint64_t base, std::uint64_t bytes, std::uint64_t line_bytes,
                    int sweeps, const AddressVisitor& visit) {
  if (line_bytes == 0) throw std::invalid_argument("generate_sweep: line_bytes == 0");
  for (int s = 0; s < sweeps; ++s) {
    for (std::uint64_t off = 0; off < bytes; off += line_bytes) {
      visit(base + off);
    }
  }
}

void generate_strided(std::uint64_t base, std::uint64_t bytes, std::uint64_t stride_bytes,
                      int sweeps, const AddressVisitor& visit) {
  if (stride_bytes == 0) throw std::invalid_argument("generate_strided: stride == 0");
  for (int s = 0; s < sweeps; ++s) {
    for (std::uint64_t off = 0; off < bytes; off += stride_bytes) {
      visit(base + off);
    }
  }
}

void generate_uniform_random(std::uint64_t base, std::uint64_t bytes, std::uint64_t count,
                             std::uint64_t seed, const AddressVisitor& visit) {
  if (bytes == 0) throw std::invalid_argument("generate_uniform_random: empty range");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> dist(0, bytes - 1);
  for (std::uint64_t i = 0; i < count; ++i) {
    visit(base + dist(rng));
  }
}

std::vector<std::uint32_t> build_chase_permutation(std::uint32_t n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("build_chase_permutation: need >= 2 slots");
  // Sattolo's algorithm yields a uniformly random single-cycle permutation:
  // following next[] visits every slot exactly once before returning, so the
  // chase cannot short-cycle and defeat the latency measurement.
  std::vector<std::uint32_t> next(n);
  for (std::uint32_t i = 0; i < n; ++i) next[i] = i;
  std::mt19937_64 rng(seed);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::uniform_int_distribution<std::uint32_t> dist(0, i - 1);
    std::swap(next[i], next[dist(rng)]);
  }
  return next;
}

void generate_chase(std::uint64_t base, const std::vector<std::uint32_t>& next,
                    std::uint64_t slot_bytes, std::uint64_t count,
                    const AddressVisitor& visit) {
  if (next.empty()) throw std::invalid_argument("generate_chase: empty permutation");
  std::uint32_t cur = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    visit(base + static_cast<std::uint64_t>(cur) * slot_bytes);
    cur = next[cur];
  }
}

}  // namespace knl::trace
