#include "trace/access_phase.hpp"

#include <stdexcept>

namespace knl::trace {

std::string to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::Sequential: return "sequential";
    case Pattern::Strided: return "strided";
    case Pattern::Random: return "random";
    case Pattern::PointerChase: return "pointer-chase";
    case Pattern::Compute: return "compute";
  }
  return "unknown";
}

void AccessPhase::validate() const {
  auto fail = [this](const char* what) {
    throw std::invalid_argument("AccessPhase '" + name + "': " + what);
  };
  if (pattern != Pattern::Compute) {
    if (footprint_bytes == 0) fail("memory phase with zero footprint");
    if (logical_bytes <= 0.0) fail("memory phase with no logical traffic");
    if (granule_bytes == 0) fail("granule_bytes must be positive");
  }
  if (flops < 0.0 || logical_bytes < 0.0) fail("negative work");
  if (sweeps < 1.0) fail("sweeps must be >= 1");
  if (write_fraction < 0.0 || write_fraction > 1.0) fail("write_fraction outside [0,1]");
  if (pattern == Pattern::Strided && stride_bytes <= 0.0) fail("strided with no stride");
  if (pattern == Pattern::PointerChase && chains_per_thread <= 0) {
    fail("pointer chase needs at least one chain");
  }
  if (compute_efficiency <= 0.0 || compute_efficiency > 1.0) {
    fail("compute_efficiency outside (0,1]");
  }
  if (l2_hit_override > 1.0) fail("l2_hit_override above 1");
  if (smt_beta < 0.0) fail("smt_beta must be non-negative");
}

}  // namespace knl::trace
