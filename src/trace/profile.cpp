#include "trace/profile.hpp"

#include <algorithm>

namespace knl::trace {

AccessProfile& AccessProfile::add(AccessPhase phase) {
  phase.validate();
  phases_.push_back(std::move(phase));
  return *this;
}

std::uint64_t AccessProfile::resident_bytes() const {
  if (resident_override_ != 0) return resident_override_;
  std::uint64_t max_fp = 0;
  for (const auto& p : phases_) max_fp = std::max(max_fp, p.footprint_bytes);
  return max_fp;
}

double AccessProfile::total_flops() const {
  double f = 0.0;
  for (const auto& p : phases_) f += p.flops;
  return f;
}

double AccessProfile::total_logical_bytes() const {
  double b = 0.0;
  for (const auto& p : phases_) b += p.logical_bytes;
  return b;
}

}  // namespace knl::trace
