#include "trace/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace knl::trace {

namespace {

/// Reuse-profile geometry implementing the analyzer's line sampling: with
/// num_sets == sample_every == S, the single sampled set holds exactly the
/// lines with line % S == 0, and its stack distances are distances among
/// sampled lines — the classic set-sampled Mattson estimate.
sim::ReuseProfileConfig reuse_geometry(const TraceAnalyzer::Config& config) {
  sim::ReuseProfileConfig geometry;
  geometry.line_bytes = config.line_bytes;
  geometry.num_sets = config.reuse_sample_every;
  geometry.sample_every = config.reuse_sample_every;
  return geometry;
}

}  // namespace

TraceAnalyzer::TraceAnalyzer() : TraceAnalyzer(Config{}) {}

TraceAnalyzer::TraceAnalyzer(Config config) : config_(config) {
  if (config_.line_bytes == 0 || config_.page_bytes == 0) {
    throw std::invalid_argument("TraceAnalyzer: line/page size must be positive");
  }
  if (config_.reuse_sample_every == 0) {
    throw std::invalid_argument("TraceAnalyzer: reuse_sample_every must be >= 1");
  }
  reuse_ = sim::ReuseProfile(reuse_geometry(config_));
}

void TraceAnalyzer::record(std::uint64_t addr) {
  ++accesses_;
  const std::uint64_t line = addr / config_.line_bytes;
  lines_.insert(line);
  pages_.insert(addr / config_.page_bytes);

  if (have_last_) {
    const auto stride = static_cast<std::int64_t>(line) -
                        static_cast<std::int64_t>(last_addr_ / config_.line_bytes);
    ++stride_histogram_[stride];
    if (stride >= 0 && stride <= 2) ++sequential_hits_;
  }
  last_addr_ = addr;
  have_last_ = true;

  // Reuse-distance sampling: the shared single-pass profile engine keeps an
  // exact per-sampled-line stack-distance histogram (sampling = the profile's
  // set-modular rule; see reuse_geometry above).
  reuse_.observe(&addr, 1);
}

TraceStats TraceAnalyzer::analyze() const {
  TraceStats stats;
  stats.accesses = accesses_;
  stats.footprint_bytes = lines_.size() * config_.line_bytes;
  stats.page_footprint_bytes = pages_.size() * config_.page_bytes;
  if (accesses_ < 2) return stats;

  const double transitions = static_cast<double>(accesses_ - 1);
  stats.sequential_fraction = static_cast<double>(sequential_hits_) / transitions;

  // Dominant non-trivial stride.
  std::uint64_t best_count = 0;
  for (const auto& [stride, count] : stride_histogram_) {
    if (count > best_count) {
      best_count = count;
      stats.dominant_stride = stride * static_cast<std::int64_t>(config_.line_bytes);
    }
  }
  stats.dominant_stride_fraction = static_cast<double>(best_count) / transitions;

  // Reuse-based cache affinity: fraction of *reuses* landing within the
  // cache, read off the stack-distance histogram (a sampled cache of C bytes
  // holds C / (line * sample) sampled lines; hits_for_capacity divides by
  // num_sets == sample, giving exactly that depth).
  if (reuse_.reuses() != 0) {
    const std::uint64_t ways =
        config_.reuse_cache_bytes /
        (config_.line_bytes * config_.reuse_sample_every);
    // Clamp to the profiled depth: distances beyond it were not recorded, so
    // the estimate saturates there instead of throwing.
    stats.l2_reuse_hit =
        static_cast<double>(
            reuse_.hits_for_ways(std::min(ways, reuse_.config().max_depth))) /
        static_cast<double>(reuse_.reuses());
  }

  // Regularity: sequential transitions count fully; a repeated constant
  // stride is prefetchable too (partially, decaying with stride size).
  double strided_bonus = 0.0;
  if (std::abs(stats.dominant_stride) > 2 * static_cast<std::int64_t>(config_.line_bytes)) {
    const double decay =
        1.0 / (1.0 + static_cast<double>(std::abs(stats.dominant_stride)) / 4096.0);
    strided_bonus = stats.dominant_stride_fraction * decay;
  }
  stats.regularity = std::clamp(stats.sequential_fraction + strided_bonus, 0.0, 1.0);
  return stats;
}

AccessPhase TraceAnalyzer::to_phase(const std::string& name, double scale_factor) const {
  if (scale_factor <= 0.0) {
    throw std::invalid_argument("TraceAnalyzer::to_phase: scale_factor must be positive");
  }
  const TraceStats stats = analyze();
  if (stats.accesses == 0) {
    throw std::logic_error("TraceAnalyzer::to_phase: no accesses recorded");
  }

  AccessPhase phase;
  phase.name = name;
  phase.footprint_bytes = static_cast<std::uint64_t>(
      static_cast<double>(stats.footprint_bytes) * scale_factor);
  phase.footprint_bytes = std::max<std::uint64_t>(phase.footprint_bytes, 1);

  if (stats.regularity >= 0.7) {
    phase.pattern = Pattern::Sequential;
    phase.granule_bytes = config_.line_bytes;
  } else if (stats.regularity >= 0.3 && stats.dominant_stride_fraction > 0.5) {
    phase.pattern = Pattern::Strided;
    phase.stride_bytes = static_cast<double>(std::abs(stats.dominant_stride));
    phase.granule_bytes = config_.line_bytes;
  } else {
    phase.pattern = Pattern::Random;
    phase.granule_bytes = 8;  // conservative sub-line granule
  }

  phase.logical_bytes = static_cast<double>(stats.accesses) *
                        static_cast<double>(phase.granule_bytes) * scale_factor;
  phase.sweeps = std::max(1.0, phase.logical_bytes /
                                   static_cast<double>(phase.footprint_bytes));
  return phase;
}

AppCharacteristics TraceAnalyzer::to_characteristics(const std::string& name,
                                                     double scale_factor) const {
  const TraceStats stats = analyze();
  AppCharacteristics app;
  app.name = name;
  app.regular_fraction = stats.regularity;
  app.footprint_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(stats.footprint_bytes) *
                                 scale_factor),
      1);
  app.random_granule_bytes = 8;
  return app;
}

void TraceAnalyzer::reset() {
  accesses_ = 0;
  have_last_ = false;
  last_addr_ = 0;
  lines_.clear();
  pages_.clear();
  stride_histogram_.clear();
  sequential_hits_ = 0;
  reuse_.reset();
}

}  // namespace knl::trace
