// AccessPhase: the contract between workloads and the timing model.
//
// A workload describes each execution phase by its memory behaviour — the
// taxonomy the paper uses to explain its results (§IV-B): regular/sequential
// phases are prefetchable and bandwidth-bound; random phases are latency-
// bound with little memory-level parallelism; dependent pointer chases have
// exactly one outstanding miss per chain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace knl::trace {

enum class Pattern : std::uint8_t {
  Sequential,    ///< Unit-stride streams (STREAM, DGEMM panels, CG vectors).
  Strided,       ///< Constant stride; prefetch efficiency decays with stride.
  Random,        ///< Independent uniform-random accesses (GUPS, XS lookups).
  PointerChase,  ///< Dependent chain(s); MLP = chains (latency probe, search).
  Compute,       ///< No memory traffic beyond caches; flops only.
};

[[nodiscard]] std::string to_string(Pattern pattern);

/// One homogeneous phase of a workload execution.
struct AccessPhase {
  std::string name;
  Pattern pattern = Pattern::Sequential;

  /// Unique bytes touched by the phase (drives cache/TLB residency).
  std::uint64_t footprint_bytes = 0;
  /// Total bytes requested by the cores over the whole phase, across all
  /// sweeps/iterations (pre cache filtering).
  double logical_bytes = 0.0;
  /// Floating point operations executed in this phase.
  double flops = 0.0;
  /// Useful bytes per independent access (8 for a GUPS update); accesses
  /// below the 64 B line size fetch a full line anyway.
  std::uint64_t granule_bytes = 64;
  /// Number of passes over the footprint (temporal-reuse signal for the
  /// MCDRAM cache and the L2 sweep model).
  double sweeps = 1.0;
  /// Fraction of logical bytes that are stores (adds write-allocate +
  /// writeback traffic).
  double write_fraction = 0.0;
  /// Stride for Pattern::Strided, in bytes.
  double stride_bytes = 64.0;
  /// Independent dependency chains per thread for Pattern::PointerChase.
  int chains_per_thread = 1;
  /// Override per-thread/core MLP if the workload knows better (<=0: use
  /// the calibrated pattern default).
  double mlp_override = 0.0;
  /// Override the modelled L2 hit probability (in [0,1]; negative = let the
  /// hierarchy model decide). Used when a concurrent streaming phase
  /// pollutes L2 beyond what the residency model can see (e.g. BFS's CSR
  /// stream evicting the parent array).
  double l2_hit_override = -1.0;
  /// SMT saturation for phases using mlp_override: concurrency scales as
  /// ht / (1 + smt_beta*(ht-1)) with hardware threads per core. 0 = linear;
  /// the 0.08 default matches the calibrated random-pattern SMT curve;
  /// synchronization-heavy kernels (BFS atomics) use larger values.
  double smt_beta = 0.08;
  /// Fraction of attainable peak flops this phase's kernel can reach when
  /// compute-bound (vectorization/blocking quality).
  double compute_efficiency = 0.8;

  /// Throws std::invalid_argument on inconsistent fields.
  void validate() const;

  /// Independent accesses issued by the phase.
  [[nodiscard]] double accesses() const {
    return granule_bytes == 0 ? 0.0 : logical_bytes / static_cast<double>(granule_bytes);
  }
};

}  // namespace knl::trace
