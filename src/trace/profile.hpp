// AccessProfile: an ordered set of phases plus the resident footprint, i.e.
// everything the machine model needs to time one workload execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/access_phase.hpp"

namespace knl::trace {

class AccessProfile {
 public:
  AccessProfile() = default;
  explicit AccessProfile(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Add a phase (validated on insertion).
  AccessProfile& add(AccessPhase phase);

  [[nodiscard]] const std::vector<AccessPhase>& phases() const noexcept { return phases_; }
  [[nodiscard]] bool empty() const noexcept { return phases_.empty(); }

  /// Peak bytes resident at once. Workloads usually keep all data live, so
  /// this defaults to the max phase footprint but can be set explicitly when
  /// distinct phases touch distinct live buffers.
  [[nodiscard]] std::uint64_t resident_bytes() const;
  void set_resident_bytes(std::uint64_t bytes) { resident_override_ = bytes; }

  [[nodiscard]] double total_flops() const;
  [[nodiscard]] double total_logical_bytes() const;

 private:
  std::string name_;
  std::vector<AccessPhase> phases_;
  std::uint64_t resident_override_ = 0;
};

}  // namespace knl::trace
