#include "trace/synth.hpp"

#include <algorithm>
#include <cmath>

#include "trace/generators.hpp"

namespace knl::trace {

namespace {

/// Addresses one phase would emit unbudgeted (clamped to 2^40 so the quota
/// arithmetic cannot overflow).
std::uint64_t desired_addresses(const AccessPhase& phase) {
  constexpr std::uint64_t kCap = 1ull << 40;
  if (phase.pattern == Pattern::Compute || phase.footprint_bytes == 0) return 0;
  const std::uint64_t fp = phase.footprint_bytes;
  switch (phase.pattern) {
    case Pattern::Sequential: {
      const std::uint64_t lines = std::max<std::uint64_t>(1, fp / 64);
      const auto sweeps = static_cast<std::uint64_t>(
          std::max(1.0, std::floor(phase.sweeps + 0.5)));
      return std::min(kCap, lines * std::min<std::uint64_t>(sweeps, 1u << 20));
    }
    case Pattern::Strided: {
      const auto stride = static_cast<std::uint64_t>(
          std::max(64.0, std::floor(phase.stride_bytes + 0.5)));
      const std::uint64_t steps = std::max<std::uint64_t>(1, (fp + stride - 1) / stride);
      const auto sweeps = static_cast<std::uint64_t>(
          std::max(1.0, std::floor(phase.sweeps + 0.5)));
      return std::min(kCap, steps * std::min<std::uint64_t>(sweeps, 1u << 20));
    }
    case Pattern::Random:
    case Pattern::PointerChase: {
      const double accesses = std::max(1.0, phase.accesses());
      return std::min(kCap, static_cast<std::uint64_t>(
                                std::min(accesses, 1.0995116e12)));
    }
    case Pattern::Compute:
      return 0;
  }
  return 0;
}

/// Drain `gen` into `out`, stopping at `quota` addresses.
template <typename Generator>
void emit(Generator& gen, std::uint64_t quota, std::vector<std::uint64_t>& out) {
  std::uint64_t buffer[kAddressChunk];
  std::uint64_t emitted = 0;
  while (emitted < quota) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(quota - emitted, kAddressChunk));
    const std::size_t got = gen.next_chunk(buffer, want);
    if (got == 0) break;
    out.insert(out.end(), buffer, buffer + got);
    emitted += got;
  }
}

}  // namespace

std::vector<std::uint64_t> synthesize_trace(const AccessProfile& profile,
                                            const SynthOptions& options) {
  std::vector<std::uint64_t> out;
  if (options.max_addresses == 0) return out;

  std::uint64_t total = 0;
  for (const AccessPhase& phase : profile.phases()) total += desired_addresses(phase);
  if (total == 0) return out;
  out.reserve(static_cast<std::size_t>(std::min(total, options.max_addresses)));

  std::uint64_t phase_index = 0;
  for (const AccessPhase& phase : profile.phases()) {
    const std::uint64_t desired = desired_addresses(phase);
    ++phase_index;
    if (desired == 0) continue;
    // Proportional budget, never zero for a phase that wants addresses.
    std::uint64_t quota = desired;
    if (total > options.max_addresses) {
      quota = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(static_cast<double>(desired) *
                                        static_cast<double>(options.max_addresses) /
                                        static_cast<double>(total)));
    }
    const std::uint64_t fp = phase.footprint_bytes;
    const std::uint64_t phase_seed =
        options.seed ^ (phase_index * 0x9E3779B97F4A7C15ull);
    switch (phase.pattern) {
      case Pattern::Sequential: {
        const auto sweeps = static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(std::max(1.0, std::floor(phase.sweeps + 0.5))),
            1u << 20));
        SweepGenerator gen(0, fp, 64, sweeps);
        emit(gen, quota, out);
        break;
      }
      case Pattern::Strided: {
        const auto stride = static_cast<std::uint64_t>(
            std::max(64.0, std::floor(phase.stride_bytes + 0.5)));
        const auto sweeps = static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(std::max(1.0, std::floor(phase.sweeps + 0.5))),
            1u << 20));
        StridedGenerator gen(0, fp, stride, sweeps);
        emit(gen, quota, out);
        break;
      }
      case Pattern::Random: {
        UniformRandomGenerator gen(0, fp, quota, phase_seed);
        emit(gen, quota, out);
        break;
      }
      case Pattern::PointerChase: {
        const auto slots = static_cast<std::uint32_t>(
            std::clamp<std::uint64_t>(fp / 64, 1, 1u << 20));
        const std::vector<std::uint32_t> next =
            build_chase_permutation(slots, phase_seed);
        ChaseGenerator gen(0, next, 64, quota);
        emit(gen, quota, out);
        break;
      }
      case Pattern::Compute:
        break;
    }
  }
  return out;
}

}  // namespace knl::trace
