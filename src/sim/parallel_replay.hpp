// Multi-core trace replay: N cores, each with a private L1 + MSHRs and a
// share of the tiled L2, draining access streams concurrently against a
// shared memory-bandwidth budget.
//
// This extends TraceMachine's single-core validation to the machine-level
// claims: that aggregate random-access throughput scales with
// cores x MSHRs until the node's bandwidth cap binds, and that the cap —
// not latency — separates DDR from MCDRAM for streaming traffic. It is
// the discrete counterpart of TimingModel's concurrency model.
//
// Simplification: cores are synchronized in rounds of one access each
// (lock-step interleave). That matches how the analytic model treats
// homogeneous SPMD phases and keeps the replay deterministic.
//
// Execution engine: replay() shards the work. Cache/TLB classification —
// the expensive part — depends only on each core's private address order,
// so per-epoch it runs as one task per core on a work-stealing thread pool,
// staged through SoA buffers and the SIMD decompose kernels (sim/simd.hpp).
// Each shard classifies into a per-shard slab arena: one aligned allocation
// holding its double-buffered classification bytes and chunk scratch,
// allocated and first-touched inside the shard's own pool task so the pages
// land NUMA-local to the worker that replays them, and carved at cache-line
// boundaries so shards never false-share.
//
// Timing reconciliation of the shared bandwidth budget is serial by
// construction (it is a global token bucket), but it no longer barriers the
// pipeline: shards announce epoch completion through a bounded lock-free
// MPSC queue (core/epoch_queue.hpp), and the reconciling thread replays
// epoch e's rounds while the pool is already classifying epoch e+1 into the
// other half of each shard's double buffer. Results stay bit-identical to
// the retained single-threaded reference (replay_reference) for every
// worker count and epoch size — see docs/ARCHITECTURE.md ("Sharded replay
// determinism").
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/thread_pool.hpp"
#include "sim/cache.hpp"
#include "sim/knl_params.hpp"
#include "sim/mesh.hpp"
#include "sim/replay_stats.hpp"
#include "sim/tlb.hpp"

namespace knl::sim {

struct ParallelReplayConfig {
  int cores = 8;  ///< replayed cores (test-scale; 64 = full node)
  double issue_ns = 0.77;
  int mshrs_per_core = 12;
  CacheConfig l1{.capacity_bytes = params::kL1Bytes, .line_bytes = params::kLineBytes,
                 .ways = params::kL1Ways, .sample_every = 1};
  /// Shared L2 slice per core pair (tile); modelled per-core as half a tile.
  CacheConfig l2{.capacity_bytes = params::kL2Bytes / 2,
                 .line_bytes = params::kLineBytes, .ways = params::kL2Ways,
                 .sample_every = 1};
  double l1_latency_ns = params::kL1LatencyNs;
  double l2_latency_ns = params::kL2LatencyNs;
  MeshConfig mesh = {};
  TlbConfig tlb = {};
  params::NodeParams node = params::kDdr;
  /// Scale the node's bandwidth cap to the replayed core count, so an
  /// 8-core replay models 1/8 of the node (caps are machine-wide).
  bool scale_cap_to_cores = true;
  /// Worker threads for the sharded classification phase; 0 = one per
  /// hardware thread. Results are identical for every value.
  unsigned workers = 0;
  /// Per-core accesses classified per epoch before the serial
  /// bandwidth-budget reconciliation pass (bounds buffer memory).
  std::size_t epoch_accesses = 1 << 15;
};

class ParallelReplay {
 public:
  ParallelReplay();  // default configuration
  explicit ParallelReplay(ParallelReplayConfig config);

  /// Replay one independent access stream per core (streams may differ in
  /// length; shorter cores idle). Returns aggregate statistics. Sharded
  /// engine: parallel classification overlapped with serial budget
  /// reconciliation via the lock-free epoch queue.
  ParallelReplayStats replay(const std::vector<std::vector<std::uint64_t>>& streams);

  /// Single-threaded lock-step reference implementation, kept as the
  /// test oracle replay() must match bit-for-bit.
  ParallelReplayStats replay_reference(
      const std::vector<std::vector<std::uint64_t>>& streams);

  /// Effective bandwidth cap applied to this replay (GB/s).
  [[nodiscard]] double bandwidth_cap_gbs() const;

  void reset();

  [[nodiscard]] const ParallelReplayConfig& config() const noexcept { return config_; }

 private:
  /// Access classification produced by the sharded phase: what each access
  /// resolved to in the core-private hierarchy (timing-independent).
  enum : std::uint8_t {
    kClassL1 = 0,
    kClassL2 = 1,
    kClassMemory = 2,
    kClassKindMask = 0x3,
    kClassTlbMiss = 0x4,
  };

  /// Classification staging chunk (addresses): sized to the trace layer's
  /// kAddressChunk so one staged chunk matches one generator hand-off.
  static constexpr std::size_t kClassifyChunk = 4096;

  /// Per-shard slab arena: one cache-line-aligned allocation carved into the
  /// shard's double-buffered per-epoch classification bytes plus the chunk
  /// staging scratch (stage flags, L1-miss compaction). ensure() allocates
  /// and zeroes (= first-touches) the slab on the calling thread — the
  /// shard's pool worker — so under a NUMA first-touch policy the pages land
  /// on the node that replays the shard. Segments are 64 B-rounded, so no
  /// two shards (and no two segments) share a cache line.
  class ShardArena {
   public:
    void ensure(std::size_t epoch_accesses);

    [[nodiscard]] std::uint8_t* cls(std::size_t parity) noexcept {
      return cls_[parity & 1];
    }
    [[nodiscard]] const std::uint8_t* cls(std::size_t parity) const noexcept {
      return cls_[parity & 1];
    }
    [[nodiscard]] std::uint8_t* tlb_hit() noexcept { return tlb_hit_; }
    [[nodiscard]] std::uint8_t* l1_hit() noexcept { return l1_hit_; }
    [[nodiscard]] std::uint8_t* l2_hit() noexcept { return l2_hit_; }
    [[nodiscard]] std::uint64_t* miss_addrs() noexcept { return miss_addrs_; }
    [[nodiscard]] std::uint32_t* miss_idx() noexcept { return miss_idx_; }

   private:
    struct FreeDeleter {
      void operator()(void* p) const noexcept { std::free(p); }
    };

    std::unique_ptr<std::byte, FreeDeleter> slab_;
    std::size_t epoch_capacity_ = 0;
    std::uint8_t* cls_[2] = {nullptr, nullptr};
    std::uint8_t* tlb_hit_ = nullptr;
    std::uint8_t* l1_hit_ = nullptr;
    std::uint8_t* l2_hit_ = nullptr;
    std::uint64_t* miss_addrs_ = nullptr;
    std::uint32_t* miss_idx_ = nullptr;
  };

  /// 64 B alignment keeps each shard's hot mutable state (cache tick/stats
  /// counters, TLB cursors) on cache lines no other shard's worker writes.
  struct alignas(64) Core {
    CacheSim l1;
    CacheSim l2;
    TlbSim tlb;
    std::vector<double> mshr_free_at;
    double issue_cursor = 0.0;
    std::size_t position = 0;  // next index in its stream
    ShardArena arena;          // worker-owned classification buffers
  };

  /// Message a shard pushes through the epoch queue when its slice of an
  /// epoch finishes classifying.
  struct EpochResult {
    std::uint32_t epoch = 0;
    std::uint32_t core = 0;
    ReplayCounters counters;
  };

  /// Classify stream[begin..end) through `core`'s private hierarchy into
  /// `cls` (pure integer work, no timing): staged per kClassifyChunk as
  /// TLB block -> L1 block -> compacted-L1-miss L2 block, preserving the
  /// exact per-simulator access order of the per-address reference.
  ReplayCounters classify(Core& core, const std::vector<std::uint64_t>& stream,
                          std::size_t begin, std::size_t end, std::uint8_t* cls);

  ParallelReplayConfig config_;
  Mesh mesh_;
  std::vector<Core> cores_;
  /// Token-bucket bandwidth budget: earliest time the memory system can
  /// start the next line transfer.
  double memory_free_at_ = 0.0;
  double line_service_ns_ = 0.0;
  std::unique_ptr<core::ThreadPool> pool_;  // lazily created classification pool
};

}  // namespace knl::sim
