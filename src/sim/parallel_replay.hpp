// Multi-core trace replay: N cores, each with a private L1 + MSHRs and a
// share of the tiled L2, draining access streams concurrently against a
// shared memory-bandwidth budget.
//
// This extends TraceMachine's single-core validation to the machine-level
// claims: that aggregate random-access throughput scales with
// cores x MSHRs until the node's bandwidth cap binds, and that the cap —
// not latency — separates DDR from MCDRAM for streaming traffic. It is
// the discrete counterpart of TimingModel's concurrency model.
//
// Simplification: cores are synchronized in rounds of one access each
// (lock-step interleave). That matches how the analytic model treats
// homogeneous SPMD phases and keeps the replay deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/knl_params.hpp"
#include "sim/mesh.hpp"
#include "sim/tlb.hpp"

namespace knl::sim {

struct ParallelReplayConfig {
  int cores = 8;  ///< replayed cores (test-scale; 64 = full node)
  double issue_ns = 0.77;
  int mshrs_per_core = 12;
  CacheConfig l1{.capacity_bytes = params::kL1Bytes, .line_bytes = params::kLineBytes,
                 .ways = params::kL1Ways, .sample_every = 1};
  /// Shared L2 slice per core pair (tile); modelled per-core as half a tile.
  CacheConfig l2{.capacity_bytes = params::kL2Bytes / 2,
                 .line_bytes = params::kLineBytes, .ways = params::kL2Ways,
                 .sample_every = 1};
  double l1_latency_ns = params::kL1LatencyNs;
  double l2_latency_ns = params::kL2LatencyNs;
  MeshConfig mesh = {};
  TlbConfig tlb = {};
  params::NodeParams node = params::kDdr;
  /// Scale the node's bandwidth cap to the replayed core count, so an
  /// 8-core replay models 1/8 of the node (caps are machine-wide).
  bool scale_cap_to_cores = true;
};

struct ParallelReplayStats {
  std::uint64_t accesses = 0;
  std::uint64_t memory_accesses = 0;
  double seconds = 0.0;
  /// Wall time spent with the bandwidth budget saturated.
  double capped_seconds = 0.0;

  [[nodiscard]] double memory_bandwidth_gbs() const {
    return seconds == 0.0 ? 0.0
                          : static_cast<double>(memory_accesses) *
                                static_cast<double>(params::kLineBytes) /
                                (seconds * 1e9);
  }
};

class ParallelReplay {
 public:
  ParallelReplay();  // default configuration
  explicit ParallelReplay(ParallelReplayConfig config);

  /// Replay one independent access stream per core (streams may differ in
  /// length; shorter cores idle). Returns aggregate statistics.
  ParallelReplayStats replay(const std::vector<std::vector<std::uint64_t>>& streams);

  /// Effective bandwidth cap applied to this replay (GB/s).
  [[nodiscard]] double bandwidth_cap_gbs() const;

  void reset();

  [[nodiscard]] const ParallelReplayConfig& config() const noexcept { return config_; }

 private:
  struct Core {
    std::unique_ptr<CacheSim> l1;
    std::unique_ptr<CacheSim> l2;
    std::unique_ptr<TlbSim> tlb;
    std::vector<double> mshr_free_at;
    double issue_cursor = 0.0;
    std::size_t position = 0;  // next index in its stream
  };

  ParallelReplayConfig config_;
  Mesh mesh_;
  std::vector<Core> cores_;
  /// Token-bucket bandwidth budget: earliest time the memory system can
  /// start the next line transfer.
  double memory_free_at_ = 0.0;
  double line_service_ns_ = 0.0;
};

}  // namespace knl::sim
