// Multi-core trace replay: N cores, each with a private L1 + MSHRs and a
// share of the tiled L2, draining access streams concurrently against a
// shared memory-bandwidth budget.
//
// This extends TraceMachine's single-core validation to the machine-level
// claims: that aggregate random-access throughput scales with
// cores x MSHRs until the node's bandwidth cap binds, and that the cap —
// not latency — separates DDR from MCDRAM for streaming traffic. It is
// the discrete counterpart of TimingModel's concurrency model.
//
// Simplification: cores are synchronized in rounds of one access each
// (lock-step interleave). That matches how the analytic model treats
// homogeneous SPMD phases and keeps the replay deterministic.
//
// Execution engine: replay() shards the work. Cache/TLB classification —
// the expensive part — depends only on each core's private address order,
// so per-epoch it runs as one task per core on a work-stealing thread pool;
// a cheap serial pass then reconciles the shared bandwidth budget in the
// exact lock-step round order. The result is bit-identical to the retained
// single-threaded reference (replay_reference) for every worker count and
// epoch size — see docs/ARCHITECTURE.md ("Sharded replay determinism").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/thread_pool.hpp"
#include "sim/cache.hpp"
#include "sim/knl_params.hpp"
#include "sim/mesh.hpp"
#include "sim/replay_stats.hpp"
#include "sim/tlb.hpp"

namespace knl::sim {

struct ParallelReplayConfig {
  int cores = 8;  ///< replayed cores (test-scale; 64 = full node)
  double issue_ns = 0.77;
  int mshrs_per_core = 12;
  CacheConfig l1{.capacity_bytes = params::kL1Bytes, .line_bytes = params::kLineBytes,
                 .ways = params::kL1Ways, .sample_every = 1};
  /// Shared L2 slice per core pair (tile); modelled per-core as half a tile.
  CacheConfig l2{.capacity_bytes = params::kL2Bytes / 2,
                 .line_bytes = params::kLineBytes, .ways = params::kL2Ways,
                 .sample_every = 1};
  double l1_latency_ns = params::kL1LatencyNs;
  double l2_latency_ns = params::kL2LatencyNs;
  MeshConfig mesh = {};
  TlbConfig tlb = {};
  params::NodeParams node = params::kDdr;
  /// Scale the node's bandwidth cap to the replayed core count, so an
  /// 8-core replay models 1/8 of the node (caps are machine-wide).
  bool scale_cap_to_cores = true;
  /// Worker threads for the sharded classification phase; 0 = one per
  /// hardware thread. Results are identical for every value.
  unsigned workers = 0;
  /// Per-core accesses classified per epoch before the serial
  /// bandwidth-budget reconciliation pass (bounds buffer memory).
  std::size_t epoch_accesses = 1 << 15;
};

class ParallelReplay {
 public:
  ParallelReplay();  // default configuration
  explicit ParallelReplay(ParallelReplayConfig config);

  /// Replay one independent access stream per core (streams may differ in
  /// length; shorter cores idle). Returns aggregate statistics. Sharded
  /// engine: parallel classification + serial budget reconciliation.
  ParallelReplayStats replay(const std::vector<std::vector<std::uint64_t>>& streams);

  /// Single-threaded lock-step reference implementation, kept as the
  /// test oracle replay() must match bit-for-bit.
  ParallelReplayStats replay_reference(
      const std::vector<std::vector<std::uint64_t>>& streams);

  /// Effective bandwidth cap applied to this replay (GB/s).
  [[nodiscard]] double bandwidth_cap_gbs() const;

  void reset();

  [[nodiscard]] const ParallelReplayConfig& config() const noexcept { return config_; }

 private:
  /// Access classification produced by the sharded phase: what each access
  /// resolved to in the core-private hierarchy (timing-independent).
  enum : std::uint8_t {
    kClassL1 = 0,
    kClassL2 = 1,
    kClassMemory = 2,
    kClassKindMask = 0x3,
    kClassTlbMiss = 0x4,
  };

  struct Core {
    CacheSim l1;
    CacheSim l2;
    TlbSim tlb;
    std::vector<double> mshr_free_at;
    double issue_cursor = 0.0;
    std::size_t position = 0;       // next index in its stream
    std::vector<std::uint8_t> cls;  // per-epoch classification buffer
  };

  /// Classify stream[begin..end) through `core`'s private hierarchy into
  /// core.cls; returns the event counts (pure integer work, no timing).
  ReplayCounters classify(Core& core, const std::vector<std::uint64_t>& stream,
                          std::size_t begin, std::size_t end);

  ParallelReplayConfig config_;
  Mesh mesh_;
  std::vector<Core> cores_;
  /// Token-bucket bandwidth budget: earliest time the memory system can
  /// start the next line transfer.
  double memory_free_at_ = 0.0;
  double line_service_ns_ = 0.0;
  std::unique_ptr<core::ThreadPool> pool_;  // lazily created classification pool
};

}  // namespace knl::sim
