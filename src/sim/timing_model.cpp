#include "sim/timing_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace knl::sim {

namespace {

constexpr double kNsPerSecond = 1e9;

/// Smoothstep between 0 and 1 over [lo, hi].
double smooth01(double x, double lo, double hi) {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  const double t = (x - lo) / (hi - lo);
  return t * t * (3.0 - 2.0 * t);
}

}  // namespace

TimingModel::TimingModel(TimingConfig config)
    : config_(config),
      hierarchy_(config.hierarchy),
      tlb_(config.tlb),
      mcdram_(config.mcdram) {
  if (config_.cores <= 0 || config_.smt_per_core <= 0) {
    throw std::invalid_argument("TimingModel: cores and smt_per_core must be positive");
  }
  if (config_.seq_mlp_per_core <= 0.0 || config_.rand_mlp_per_thread <= 0.0) {
    throw std::invalid_argument("TimingModel: MLP parameters must be positive");
  }
}

int TimingModel::ht_per_core(int threads) const {
  if (threads <= 0) throw std::invalid_argument("ht_per_core: threads must be positive");
  const int max_threads = config_.cores * config_.smt_per_core;
  const int clamped = std::min(threads, max_threads);
  return (clamped + config_.cores - 1) / config_.cores;
}

double TimingModel::regularity(const trace::AccessPhase& phase) {
  using trace::Pattern;
  switch (phase.pattern) {
    case Pattern::Sequential:
    case Pattern::Compute:
      return 1.0;
    case Pattern::Random:
    case Pattern::PointerChase:
      return 0.0;
    case Pattern::Strided: {
      // Prefetchers track strides up to ~2 KB; past a page the stream is
      // effectively random for both prefetch and DRAM page locality.
      const double s = phase.stride_bytes;
      return 1.0 - smooth01(s, 2.0 * 1024.0, 64.0 * 1024.0);
    }
  }
  return 0.0;
}

double TimingModel::concurrency_lines(const trace::AccessPhase& phase, int threads) const {
  const int ht = ht_per_core(threads);
  const auto ht_idx = static_cast<std::size_t>(ht - 1);
  const int active_threads = std::min(threads, config_.cores * config_.smt_per_core);
  const int active_cores = std::min(threads, config_.cores);

  if (phase.mlp_override > 0.0) {
    const double ht_eff =
        static_cast<double>(ht) / (1.0 + phase.smt_beta * static_cast<double>(ht - 1));
    return phase.mlp_override * static_cast<double>(active_cores) * ht_eff;
  }

  using trace::Pattern;
  switch (phase.pattern) {
    case Pattern::Compute:
      return 0.0;
    case Pattern::PointerChase:
      return static_cast<double>(phase.chains_per_thread) *
             static_cast<double>(active_threads);
    default:
      break;
  }

  const double seq_conc = static_cast<double>(active_cores) * config_.seq_mlp_per_core *
                          params::kSeqSmtScale[ht_idx];
  const double rand_conc = static_cast<double>(active_threads) *
                           config_.rand_mlp_per_thread * params::kRandSmtScale[ht_idx];
  const double r = regularity(phase);
  return r * seq_conc + (1.0 - r) * rand_conc;
}

double TimingModel::effective_latency_ns(const trace::AccessPhase& phase,
                                         const params::NodeParams& node,
                                         [[maybe_unused]] int threads,
                                         double utilization) const {
  const double r = regularity(phase);

  // Prefetched streams overlap the directory walk and, with huge pages, see
  // one TLB fill per 2 MiB — both effectively free. Random accesses pay the
  // directory and the expected paging penalty on every miss. Page tables
  // live in the same node as the data (membind binds them too), so the walk
  // cost scales with the node's latency.
  const double walk_scale = node.idle_latency_ns / config_.ddr.idle_latency_ns;
  const double dir_ns = (1.0 - r) * hierarchy_.directory_overhead_ns();
  const double tlb_ns =
      (1.0 - r) * walk_scale * tlb_.expected_penalty_ns(phase.footprint_bytes);

  double lat = node.idle_latency_ns + dir_ns + tlb_ns;

  // Load-dependent queueing: as demand approaches the node cap, each access
  // waits on controller queues. Clamp utilization below 1 to keep the model
  // finite at the cap (throughput there is handled by the cap itself).
  const double u = std::clamp(utilization, 0.0, 0.97);
  lat *= 1.0 + config_.queue_coefficient * u * u / (1.0 - u);
  return lat;
}

double TimingModel::memory_traffic_bytes(const trace::AccessPhase& phase,
                                         int threads) const {
  using trace::Pattern;
  if (phase.pattern == Pattern::Compute) return 0.0;

  const double line = static_cast<double>(params::kLineBytes);
  const double r = regularity(phase);

  // Line amplification: sub-line granules still move whole lines.
  const double granule = static_cast<double>(phase.granule_bytes);
  const double amplification = std::max(1.0, line / granule);

  // L2 filtering.
  double miss_fraction;
  if (phase.l2_hit_override >= 0.0) {
    miss_fraction = 1.0 - phase.l2_hit_override;
  } else if (r >= 0.5) {
    // Repeated sweeps: the first pass always misses; later passes hit while
    // the footprint stays L2-resident.
    const double h = hierarchy_.sweep_l2_hit(phase.footprint_bytes);
    miss_fraction = (1.0 + (phase.sweeps - 1.0) * (1.0 - h)) / phase.sweeps;
  } else {
    const double h = hierarchy_.random_l2_hit(phase.footprint_bytes, threads);
    miss_fraction = 1.0 - h;
  }

  // Stores add write-allocate fills plus dirty evictions.
  const double write_factor = 1.0 + phase.write_fraction;

  return phase.logical_bytes * amplification * miss_fraction * write_factor;
}

double TimingModel::node_cap_gbs(const trace::AccessPhase& phase,
                                 const params::NodeParams& node) const {
  const double r = regularity(phase);
  return r * node.stream_bw_gbs + (1.0 - r) * node.random_bw_gbs;
}

TimingModel::NodePath TimingModel::time_on_node(const trace::AccessPhase& phase,
                                                const params::NodeParams& node,
                                                int threads, double bytes,
                                                double conc_share) const {
  NodePath path;
  path.bytes = bytes;
  path.cap_gbs = node_cap_gbs(phase, node);
  if (bytes <= 0.0) return path;

  const double conc = concurrency_lines(phase, threads) * conc_share;
  // Little's law at unloaded latency gives the demand; the node cap bounds
  // the throughput. At the cap, queueing raises the *observed* latency until
  // demand meets supply (M/D/1 equilibrium) — it does not push throughput
  // below the cap, so inflation is applied to the reported latency only.
  const double lat0 = effective_latency_ns(phase, node, threads, 0.0);
  const double demand = conc * static_cast<double>(params::kLineBytes) / lat0;

  path.bw_gbs = std::min(path.cap_gbs, demand);
  path.capped = demand >= path.cap_gbs;
  const double util = path.bw_gbs / path.cap_gbs;
  path.latency_ns = path.capped
                        ? conc * static_cast<double>(params::kLineBytes) / path.bw_gbs
                        : effective_latency_ns(phase, node, threads, util);
  path.seconds = bytes / (path.bw_gbs * kNsPerSecond) * 1.0;  // bytes / (GB/s * 1e9 B/GB)
  return path;
}

PhaseTiming TimingModel::time_phase(const trace::AccessPhase& phase, const RunConfig& run,
                                    double hbm_fraction) const {
  phase.validate();
  if (!run.valid()) throw std::invalid_argument("time_phase: invalid RunConfig");
  if (hbm_fraction < 0.0 || hbm_fraction > 1.0) {
    throw std::invalid_argument("time_phase: hbm_fraction outside [0,1]");
  }

  PhaseTiming out;
  const int threads = run.threads;
  const int ht = ht_per_core(threads);

  // Compute time: all phases may carry flops; the kernel overlaps compute
  // with memory, so the phase takes the max of the two.
  double compute_seconds = 0.0;
  if (phase.flops > 0.0) {
    const double gflops = params::attainable_gflops(ht) * phase.compute_efficiency;
    compute_seconds = phase.flops / (gflops * 1e9);
  }

  const double mem_bytes = memory_traffic_bytes(phase, threads);
  out.memory_bytes = mem_bytes;

  double mem_seconds = 0.0;
  if (mem_bytes > 0.0) {
    if (run.config == MemConfig::CacheMode) {
      // All pages in DDR behind the direct-mapped MCDRAM cache.
      const double r = regularity(phase);
      const double hit = r >= 0.5 ? mcdram_.sweep_hit_rate(phase.footprint_bytes)
                                  : mcdram_.random_hit_rate(phase.footprint_bytes);
      out.mcdram_hit_rate = hit;

      const double hbm_cap = node_cap_gbs(phase, config_.hbm);
      const double ddr_cap = node_cap_gbs(phase, config_.ddr);
      const double blended_cap = mcdram_.effective_bandwidth_gbs(hit, hbm_cap, ddr_cap);

      const double conc = concurrency_lines(phase, threads);
      const double lat_hbm = effective_latency_ns(phase, config_.hbm, threads, 0.0);
      const double lat_ddr = effective_latency_ns(phase, config_.ddr, threads, 0.0);
      const double lat = mcdram_.effective_latency_ns(hit, lat_hbm, lat_ddr);
      const double demand = conc * static_cast<double>(params::kLineBytes) / lat;

      const double bw = std::min(blended_cap, demand);
      out.bandwidth_bound = demand >= blended_cap;
      out.effective_latency_ns =
          out.bandwidth_bound ? conc * static_cast<double>(params::kLineBytes) / bw : lat;
      out.concurrency_lines = conc;
      mem_seconds = mem_bytes / (bw * kNsPerSecond);
    } else {
      const double hbm_bytes = mem_bytes * hbm_fraction;
      const double ddr_bytes = mem_bytes - hbm_bytes;
      const NodePath hbm_path =
          time_on_node(phase, config_.hbm, threads, hbm_bytes, hbm_fraction);
      const NodePath ddr_path =
          time_on_node(phase, config_.ddr, threads, ddr_bytes, 1.0 - hbm_fraction);
      // The two memory systems drain their shares concurrently.
      mem_seconds = std::max(hbm_path.seconds, ddr_path.seconds);
      const NodePath& dominant = hbm_path.seconds >= ddr_path.seconds ? hbm_path : ddr_path;
      out.effective_latency_ns = dominant.latency_ns;
      out.bandwidth_bound = dominant.capped;
      out.concurrency_lines = concurrency_lines(phase, threads);
      out.mcdram_hit_rate = 1.0;
    }
  }

  out.seconds = std::max(mem_seconds, compute_seconds);
  out.compute_bound = compute_seconds > mem_seconds;
  if (out.compute_bound) out.bandwidth_bound = false;
  if (out.seconds > 0.0 && mem_bytes > 0.0) {
    out.achieved_bw_gbs = mem_bytes / (out.seconds * kNsPerSecond) * 1.0;
  }
  return out;
}

PhaseTiming TimingModel::time_phase_tiered(const trace::AccessPhase& phase,
                                           const RunConfig& run,
                                           const MemoryTopology& topology,
                                           const std::vector<double>& fractions) const {
  phase.validate();
  if (!run.valid()) {
    throw std::invalid_argument("time_phase_tiered: invalid RunConfig");
  }
  const std::size_t n = topology.tier_count();
  if (fractions.size() != n) {
    throw std::invalid_argument("time_phase_tiered: one fraction per tier required");
  }
  double fraction_sum = 0.0;
  for (const double f : fractions) {
    if (f < 0.0 || f > 1.0) {
      throw std::invalid_argument("time_phase_tiered: fraction outside [0,1]");
    }
    fraction_sum += f;
  }
  if (std::abs(fraction_sum - 1.0) > 1e-6) {
    throw std::invalid_argument("time_phase_tiered: fractions must sum to 1");
  }

  PhaseTiming out;
  const int threads = run.threads;
  const int ht = ht_per_core(threads);

  double compute_seconds = 0.0;
  if (phase.flops > 0.0) {
    const double gflops = params::attainable_gflops(ht) * phase.compute_efficiency;
    compute_seconds = phase.flops / (gflops * 1e9);
  }

  const double mem_bytes = memory_traffic_bytes(phase, threads);
  out.memory_bytes = mem_bytes;

  double mem_seconds = 0.0;
  if (mem_bytes > 0.0) {
    const int dram = topology.dram_tier();
    const int front =
        run.config == MemConfig::CacheMode ? topology.cache_front_of(dram) : -1;
    const bool cache_mode = front != -1;

    // Per-tier byte shares. Tiers behind the cache blend (the DRAM tier and
    // its cache front) are folded into one cache-path share; the *last*
    // remaining share is computed as a remainder so the split is exact (and
    // bit-identical to time_phase's `mem_bytes - hbm_bytes` on two tiers).
    struct Share {
      int tier = -1;  // -1 = the cache-mode blended path
      double bytes = 0.0;
      double conc_share = 0.0;
    };
    std::vector<Share> shares;
    double bytes_before = 0.0;
    double conc_before = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int tier = static_cast<int>(i);
      if (cache_mode && (tier == dram || tier == front)) continue;
      Share s;
      s.tier = tier;
      s.bytes = mem_bytes * fractions[i];
      s.conc_share = fractions[i];
      bytes_before += s.bytes;
      conc_before += fractions[i];
      shares.push_back(s);
    }
    if (cache_mode) {
      // Everything not placed on a direct tier drains through the cache.
      shares.push_back(Share{-1, mem_bytes - bytes_before, 1.0 - conc_before});
    } else if (!shares.empty()) {
      // Sum only the *earlier* shares: fl(fl(a+b)-b) != a, so subtracting the
      // last share back out of the running total would drift by an ulp from
      // time_phase's `mem_bytes - hbm_bytes`.
      double earlier_bytes = 0.0;
      double earlier_conc = 0.0;
      for (std::size_t s = 0; s + 1 < shares.size(); ++s) {
        earlier_bytes += shares[s].bytes;
        earlier_conc += shares[s].conc_share;
      }
      shares.back().bytes = mem_bytes - earlier_bytes;
      shares.back().conc_share = 1.0 - earlier_conc;
    }

    double dominant_seconds = -1.0;
    double dominant_latency = 0.0;
    bool dominant_capped = false;
    double hit_rate = 1.0;
    for (const Share& share : shares) {
      if (share.bytes <= 0.0) continue;
      double seconds = 0.0;
      double latency_ns = 0.0;
      bool capped = false;
      if (share.tier == -1) {
        // The cache-mode blend, verbatim from time_phase: a direct-mapped
        // front-tier cache over the DRAM tier.
        const params::NodeParams& hbm_node =
            topology.tier(static_cast<std::size_t>(front)).params;
        const params::NodeParams& ddr_node =
            topology.tier(static_cast<std::size_t>(dram)).params;
        const double r = regularity(phase);
        const double hit = r >= 0.5 ? mcdram_.sweep_hit_rate(phase.footprint_bytes)
                                    : mcdram_.random_hit_rate(phase.footprint_bytes);
        hit_rate = hit;
        const double hbm_cap = node_cap_gbs(phase, hbm_node);
        const double ddr_cap = node_cap_gbs(phase, ddr_node);
        const double blended_cap = mcdram_.effective_bandwidth_gbs(hit, hbm_cap, ddr_cap);
        const double conc = concurrency_lines(phase, threads) * share.conc_share;
        const double lat_hbm = effective_latency_ns(phase, hbm_node, threads, 0.0);
        const double lat_ddr = effective_latency_ns(phase, ddr_node, threads, 0.0);
        const double lat = mcdram_.effective_latency_ns(hit, lat_hbm, lat_ddr);
        const double demand = conc * static_cast<double>(params::kLineBytes) / lat;
        const double bw = std::min(blended_cap, demand);
        capped = demand >= blended_cap;
        latency_ns = capped ? conc * static_cast<double>(params::kLineBytes) / bw : lat;
        seconds = share.bytes / (bw * kNsPerSecond);
      } else {
        const NodePath path = time_on_node(
            phase, topology.tier(static_cast<std::size_t>(share.tier)).params, threads,
            share.bytes, share.conc_share);
        seconds = path.seconds;
        latency_ns = path.latency_ns;
        capped = path.capped;
      }
      if (seconds > dominant_seconds) {
        dominant_seconds = seconds;
        dominant_latency = latency_ns;
        dominant_capped = capped;
      }
      mem_seconds = std::max(mem_seconds, seconds);
    }
    out.effective_latency_ns = dominant_latency;
    out.bandwidth_bound = dominant_capped;
    out.concurrency_lines = concurrency_lines(phase, threads);
    out.mcdram_hit_rate = hit_rate;
  }

  out.seconds = std::max(mem_seconds, compute_seconds);
  out.compute_bound = compute_seconds > mem_seconds;
  if (out.compute_bound) out.bandwidth_bound = false;
  if (out.seconds > 0.0 && mem_bytes > 0.0) {
    out.achieved_bw_gbs = mem_bytes / (out.seconds * kNsPerSecond) * 1.0;
  }
  return out;
}

}  // namespace knl::sim
