// Shared statistics vocabulary of the discrete replay engines.
//
// TraceMachine (single core) and ParallelReplay (sharded multi-core) count
// the same events; ReplayCounters holds those counters once, and merge() is
// the reduction the sharded replay uses to combine per-core counts (it is
// associative and commutative, but the reducer always merges in core order
// so the result is deterministic by construction, not by accident).
#pragma once

#include <cstdint>

#include "sim/knl_params.hpp"

namespace knl::sim {

/// Event counters shared by every replay engine.
struct ReplayCounters {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t mcdram_hits = 0;

  /// Accumulate another shard's counters into this one.
  ReplayCounters& merge(const ReplayCounters& other) {
    accesses += other.accesses;
    l1_hits += other.l1_hits;
    l2_hits += other.l2_hits;
    memory_accesses += other.memory_accesses;
    tlb_misses += other.tlb_misses;
    mcdram_hits += other.mcdram_hits;
    return *this;
  }
};

/// Counters plus the simulated wall time of the replayed stream.
struct ReplayStats : ReplayCounters {
  double seconds = 0.0;

  [[nodiscard]] double avg_access_ns() const {
    return accesses == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(accesses);
  }
  [[nodiscard]] double memory_bandwidth_gbs() const {
    return seconds == 0.0 ? 0.0
                          : static_cast<double>(memory_accesses) *
                                static_cast<double>(params::kLineBytes) /
                                (seconds * 1e9);
  }
};

/// Multi-core replay additionally tracks time spent with the shared
/// bandwidth budget saturated.
struct ParallelReplayStats : ReplayStats {
  /// Wall time spent with the bandwidth budget saturated.
  double capped_seconds = 0.0;
};

}  // namespace knl::sim
