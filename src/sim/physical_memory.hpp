// Simulated physical memory: per-node frame allocators.
//
// Frames are bookkeeping only — nothing is backed by host memory — so the
// simulated machine can "hold" the paper's 90 GB XSBench problem on any
// development box. Frame identity still matters: the MCDRAM direct-mapped
// cache maps DDR *physical* frames to cache sets, so fragmentation of the
// physical layout is what produces cache-mode conflict misses.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/types.hpp"
#include "sim/knl_params.hpp"
#include "sim/memory_node.hpp"

namespace knl::sim {

/// Physical frame number within one node.
struct Frame {
  MemNode node;
  std::uint64_t index;

  friend bool operator==(const Frame&, const Frame&) = default;
};

struct PhysicalMemoryConfig {
  std::uint64_t page_bytes = params::kPageBytes;
  params::NodeParams ddr = params::kDdr;
  params::NodeParams hbm = params::kHbm;
  /// Probability that the buddy allocator cannot extend the current
  /// contiguous run and restarts at a random offset — models long-uptime
  /// physical fragmentation. 0 = perfectly contiguous machine after boot.
  double fragmentation = 0.05;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

/// Frame allocator over both nodes. Allocation is mostly-contiguous with a
/// tunable fragmentation probability (see config); frees return frames to a
/// free list that later allocations may reuse out of order.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(PhysicalMemoryConfig config = {});

  [[nodiscard]] std::uint64_t page_bytes() const noexcept { return config_.page_bytes; }
  [[nodiscard]] const MemoryNode& node(MemNode which) const;
  [[nodiscard]] MemoryNode& node(MemNode which);

  /// Number of frames a node can hold in total.
  [[nodiscard]] std::uint64_t total_frames(MemNode which) const;
  [[nodiscard]] std::uint64_t free_frames(MemNode which) const;

  /// Allocate `count` frames on `which`. Returns nullopt (allocating
  /// nothing) if the node lacks capacity.
  [[nodiscard]] std::optional<std::vector<Frame>> allocate(MemNode which,
                                                           std::uint64_t count);

  /// Return frames to their node. Frames must have been allocated by this
  /// object and not yet freed.
  void free(const std::vector<Frame>& frames);

  void reset();

 private:
  [[nodiscard]] std::uint64_t fresh_frame(MemNode which);

  struct NodeState {
    MemoryNode node;
    std::uint64_t next_index = 0;  // bump pointer for never-used frames
    std::vector<std::uint64_t> free_list;
  };

  NodeState& state(MemNode which);
  const NodeState& state(MemNode which) const;

  PhysicalMemoryConfig config_;
  NodeState ddr_;
  NodeState hbm_;
  std::mt19937_64 rng_;
};

}  // namespace knl::sim
