// Runtime-dispatched SIMD kernels for the replay hot path.
//
// The batched classification loops in CacheSim/TlbSim split each address
// block into two stages: a *decomposition* stage that turns the AoS address
// stream into SoA set-index/tag (or page) arrays — pure element-wise
// shift/mask work with no loop-carried state — and a stateful *apply* stage
// that walks those arrays through the LRU structures. Decomposition is the
// part worth vectorizing, and this module provides it three ways:
//
//   kScalar  portable fallback (also the auto-vectorization baseline);
//   kSse2    128-bit / 2 lanes — the x86-64 baseline, always available;
//   kAvx2    256-bit / 4 lanes, selected when the CPU reports AVX2.
//
// Every level computes bit-identical outputs (exact integer shift/mask), so
// dispatch is a pure performance decision; tests force each level through
// set_level_for_testing() and assert equality against the scalar reference.
//
// Dispatch is resolved once per process from CPUID, overridable with
// KNL_SIMD=scalar|sse2|avx2 (clamped to what the CPU supports) so a
// deployment can pin the level and benchmarks can label their context.
#pragma once

#include <cstddef>
#include <cstdint>

namespace knl::sim::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// SoA staging width used by the batched simulators: one chunk's address
/// input plus its set/tag output arrays is 24 KiB, so the whole working set
/// of the decompose+apply loop stays L1-resident while still amortizing the
/// per-chunk dispatch to nothing.
inline constexpr std::size_t kSoaChunk = 1024;

/// Best level supported by this CPU (ignoring overrides).
[[nodiscard]] Level cpu_level() noexcept;

/// Level in effect: cpu_level() clamped by KNL_SIMD and any testing
/// override. Cached after the first call.
[[nodiscard]] Level active_level() noexcept;

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Force a dispatch level (clamped to cpu_level()); returns the level now in
/// effect. Tests use this to compare paths; not thread-safe against
/// concurrent kernel calls.
Level set_level_for_testing(Level level) noexcept;

/// Drop the testing override and re-resolve from CPUID + KNL_SIMD.
void reset_level_for_testing() noexcept;

/// Power-of-two geometry decomposition:
///   line   = addrs[i] >> line_shift
///   set    = line & set_mask        -> set_out[i]
///   tag    = line >> set_shift      -> tag_out[i]
void decompose_pow2(const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
                    std::uint64_t set_mask, unsigned set_shift, std::uint64_t* set_out,
                    std::uint64_t* tag_out);

/// Sampled variant: keeps only addresses whose line satisfies
/// (line & sample_mask) == 0 (sample_mask fits inside set_mask), writing the
/// *sampled* set index ((line & set_mask) >> sample_shift) and the tag,
/// compacted in stream order. Returns the kept count. The rejected lanes are
/// the common case for sampled configs, so the kernel is a vectorized
/// skip-scan with scalar extraction of the rare survivors.
std::size_t decompose_pow2_sampled(const std::uint64_t* addrs, std::size_t n,
                                   unsigned line_shift, std::uint64_t set_mask,
                                   unsigned set_shift, std::uint64_t sample_mask,
                                   unsigned sample_shift, std::uint64_t* set_out,
                                   std::uint64_t* tag_out);

/// out[i] = addrs[i] >> shift — page-number extraction for the TLB.
void shift_right(const std::uint64_t* addrs, std::size_t n, unsigned shift,
                 std::uint64_t* out);

}  // namespace knl::sim::simd
