// Model of the KNL 2D mesh of tiles and its distributed tag directory.
//
// Paper §II: tiles (2 cores + 1 MB shared L2 each) are connected by a mesh
// network-on-chip; L2 coherence uses a distributed tag directory (MESIF,
// cache-to-cache forwarding).  The testbed runs in *quadrant* cluster mode:
// the directory home of an address lives in the same quadrant as the memory
// channel that owns it, which shortens the 3-hop coherence walk.
//
// The mesh contributes the middle latency tier of Fig. 3: accesses that miss
// the local L2 pay a directory lookup plus, on a remote-L2 hit, a forwarding
// trip across the mesh.
#pragma once

#include <cstdint>

namespace knl::sim {

enum class ClusterMode : std::uint8_t {
  AllToAll,  ///< Directory home anywhere on the die.
  Quadrant,  ///< Directory home co-located with the memory quadrant (testbed).
  Snc4,      ///< Sub-NUMA clustering (not used by the paper's testbed).
};

struct MeshConfig {
  int tiles_x = 8;
  int tiles_y = 4;  // 32 active tiles on the 7210
  double hop_latency_ns = 1.6;
  double directory_lookup_ns = 12.0;
  ClusterMode mode = ClusterMode::Quadrant;
};

/// Analytic latency contributions of the on-die interconnect.
class Mesh {
 public:
  explicit Mesh(MeshConfig config = {});

  [[nodiscard]] int tiles() const noexcept { return config_.tiles_x * config_.tiles_y; }
  [[nodiscard]] const MeshConfig& config() const noexcept { return config_; }

  /// Manhattan hop count between two tiles (row-major ids).
  [[nodiscard]] int hops(int tile_a, int tile_b) const;

  /// Mean hop count between two uniformly random tiles, respecting the
  /// cluster mode (quadrant mode confines directory traffic to a quadrant).
  [[nodiscard]] double mean_hops() const noexcept { return mean_hops_; }

  /// Latency of a directory lookup for an address homed on a random tile.
  [[nodiscard]] double directory_latency_ns() const;

  /// Extra latency of a cache-to-cache forward from a random remote L2
  /// (directory lookup + forward trip + response).
  [[nodiscard]] double remote_l2_forward_ns() const;

 private:
  MeshConfig config_;
  double mean_hops_ = 0.0;
};

}  // namespace knl::sim
