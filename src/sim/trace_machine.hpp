// Trace-driven timed simulator: replay a concrete address stream through
// the exact component simulators (L1/L2 CacheSim, TlbSim, McdramCacheSim)
// with MSHR-limited overlap, producing wall time.
//
// This is the discrete counterpart of the analytic TimingModel: the
// analytic model computes throughput from Little's law in closed form;
// TraceMachine *derives* it event by event from the same machine
// parameters. tests/sim/trace_machine_test.cpp cross-validates the two —
// the repository's core internal-consistency check.
//
// Scope: one core's access stream (optionally as independent accesses, a
// dependent chain, or k interleaved dependent chains), exact caches, no
// prefetcher (prefetch-train behaviour is a parameter of the analytic
// model, not replayed).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/cache.hpp"
#include "sim/knl_params.hpp"
#include "sim/mcdram_cache.hpp"
#include "sim/mesh.hpp"
#include "sim/replay_stats.hpp"
#include "sim/tlb.hpp"
#include "sim/topology.hpp"

namespace knl::sim {

struct TraceMachineConfig {
  // Core front end.
  double issue_ns = 0.77;  ///< 1 access/cycle @ 1.3 GHz
  int mshrs = 12;          ///< outstanding L1 misses per core
  // Hierarchy.
  CacheConfig l1{.capacity_bytes = params::kL1Bytes, .line_bytes = params::kLineBytes,
                 .ways = params::kL1Ways, .sample_every = 1};
  CacheConfig l2{.capacity_bytes = params::kL2Bytes, .line_bytes = params::kLineBytes,
                 .ways = params::kL2Ways, .sample_every = 1};
  double l1_latency_ns = params::kL1LatencyNs;
  double l2_latency_ns = params::kL2LatencyNs;
  MeshConfig mesh = {};
  TlbConfig tlb = {};
  // Memory target.
  params::NodeParams node = params::kDdr;
  // Cache mode: route misses through a direct-mapped MCDRAM cache.
  bool mcdram_cache_enabled = false;
  McdramCacheConfig mcdram = {};
  params::NodeParams mcdram_node = params::kHbm;

  /// Configuration targeting tier `tier` of a declared topology: the tier's
  /// NodeParams become the memory target, and when a cache-capable tier
  /// fronts it, cache mode is enabled with that front tier's parameters
  /// (capacity, node timing). The topology must be validated.
  [[nodiscard]] static TraceMachineConfig for_tier(const MemoryTopology& topology,
                                                  std::size_t tier);
};

class TraceMachine {
 public:
  TraceMachine();  // default configuration
  explicit TraceMachine(TraceMachineConfig config);

  /// Replay `addrs` as *independent* accesses: up to `mshrs` misses overlap.
  ReplayStats replay_independent(const std::vector<std::uint64_t>& addrs);

  /// Replay `addrs` as `chains` interleaved *dependent* chains: access i
  /// cannot issue before access i-chains completes (the latency-probe
  /// semantics; chains=1 is a pure pointer chase).
  ReplayStats replay_chained(const std::vector<std::uint64_t>& addrs, int chains);

  /// Reset caches, TLB and statistics (fresh machine).
  void reset();

  [[nodiscard]] const TraceMachineConfig& config() const noexcept { return config_; }

 private:
  /// Service one access starting no earlier than `ready_ns`; returns its
  /// completion time and updates bookkeeping.
  double service(std::uint64_t addr, double ready_ns, ReplayStats& stats);

  TraceMachineConfig config_;
  CacheSim l1_;
  CacheSim l2_;
  TlbSim tlb_;
  TlbModel tlb_model_;
  McdramCacheSim mcdram_;
  Mesh mesh_;
  std::vector<double> mshr_free_at_;
  // Distinct pages the stream has touched so far: the page-table working
  // set, which sets the cost of a walk (cached at small footprints, from
  // memory once the tables outgrow the cache hierarchy). Mirrors the
  // footprint-dependent walk cost the analytic TlbModel charges.
  std::unordered_set<std::uint64_t> pages_seen_;
  double walk_node_scale_ = 1.0;
  double clock_ns_ = 0.0;
};

}  // namespace knl::sim
