#include "sim/mcdram_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace knl::sim {

McdramCacheModel::McdramCacheModel(McdramCacheConfig config) : config_(config) {
  if (config_.capacity_bytes == 0) {
    throw std::invalid_argument("McdramCacheModel: capacity must be positive");
  }
  if (config_.sweep_knee <= 0.0 || config_.sweep_sharpness <= 0.0) {
    throw std::invalid_argument("McdramCacheModel: sweep model parameters must be positive");
  }
}

double McdramCacheModel::sweep_hit_rate(std::uint64_t footprint_bytes) const {
  if (footprint_bytes == 0) return 1.0;
  const double rho = static_cast<double>(footprint_bytes) /
                     static_cast<double>(config_.capacity_bytes);
  // Logistic body (conflict buildup toward full occupancy) with a residency
  // tail: once the sweep exceeds capacity, multi-stream interleaving keeps
  // ~0.35*C/S of accesses hitting — calibrated so cache mode crosses below
  // DRAM near the paper's ~23 GB point rather than collapsing at 16 GB.
  const double logistic =
      1.0 / (1.0 + std::pow(rho / config_.sweep_knee, config_.sweep_sharpness));
  const double tail = std::min(1.0, 0.35 / rho);
  return std::max(logistic, tail);
}

double McdramCacheModel::random_hit_rate(std::uint64_t footprint_bytes) const {
  if (footprint_bytes == 0) return 1.0;
  const double rho = static_cast<double>(footprint_bytes) /
                     static_cast<double>(config_.capacity_bytes);
  // Residency bound capacity/footprint, degraded by direct-mapped conflict
  // pressure: with k = footprint/capacity lines competing per set on
  // average, the chance the needed line is the one currently resident in
  // its set falls like 1/max(1,rho) and loses an extra conflict factor as
  // occupancy approaches 1 (Poisson collision among hot pages).
  const double residency = std::min(1.0, 1.0 / rho);
  const double conflict = std::exp(-0.5 * std::min(rho, 1.0));
  return residency * conflict;
}

double McdramCacheModel::effective_bandwidth_gbs(double hit_rate, double hbm_bw_gbs,
                                                 double ddr_bw_gbs) const {
  if (hit_rate < 0.0 || hit_rate > 1.0) {
    throw std::invalid_argument("effective_bandwidth_gbs: hit rate outside [0,1]");
  }
  if (hbm_bw_gbs <= 0.0 || ddr_bw_gbs <= 0.0) {
    throw std::invalid_argument("effective_bandwidth_gbs: bandwidths must be positive");
  }
  const double s_per_gb = hit_rate / hbm_bw_gbs +
                          (1.0 - hit_rate) * (1.0 / ddr_bw_gbs + config_.miss_overhead_s_per_gb);
  return 1.0 / s_per_gb;
}

double McdramCacheModel::effective_latency_ns(double hit_rate, double hbm_latency_ns,
                                              double ddr_latency_ns) const {
  if (hit_rate < 0.0 || hit_rate > 1.0) {
    throw std::invalid_argument("effective_latency_ns: hit rate outside [0,1]");
  }
  // Hit: tag + data both in MCDRAM (the hbm trip already covers data).
  // Miss: the MCDRAM tag probe, then the DDR access; the fill write is off
  // the critical path but the tag update serializes a fraction of it again.
  const double hit_ns = hbm_latency_ns;
  const double miss_ns = config_.tag_latency_ns + ddr_latency_ns + 0.25 * config_.tag_latency_ns;
  return hit_rate * hit_ns + (1.0 - hit_rate) * miss_ns;
}

McdramCacheSim::McdramCacheSim(McdramCacheConfig config, std::uint64_t sample_every)
    : sim_(CacheConfig{.capacity_bytes = config.capacity_bytes,
                       .line_bytes = config.line_bytes,
                       .ways = 1,
                       .sample_every = sample_every}) {}

}  // namespace knl::sim
