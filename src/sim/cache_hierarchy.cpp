#include "sim/cache_hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace knl::sim {

CacheHierarchy::CacheHierarchy(HierarchyConfig config)
    : config_(config), mesh_(config.mesh) {
  if (config_.tiles <= 0) throw std::invalid_argument("CacheHierarchy: tiles must be > 0");
  if (config_.l2_effectiveness <= 0.0 || config_.l2_effectiveness > 1.0) {
    throw std::invalid_argument("CacheHierarchy: l2_effectiveness must be in (0,1]");
  }
}

double CacheHierarchy::sweep_l2_hit(std::uint64_t footprint_bytes) const {
  // Repeated cyclic sweeps under LRU: full reuse while resident, none once
  // the sweep exceeds capacity. A sharp logistic instead of a step keeps the
  // model smooth across the boundary (set-conflict fuzz in practice).
  const double cap = config_.l2_effectiveness * static_cast<double>(aggregate_l2_bytes());
  const double rho = static_cast<double>(footprint_bytes) / cap;
  return 1.0 / (1.0 + std::pow(rho, 8.0));
}

double CacheHierarchy::random_l2_hit(std::uint64_t footprint_bytes, int threads) const {
  if (threads <= 0) throw std::invalid_argument("random_l2_hit: threads must be > 0");
  if (footprint_bytes == 0) return 1.0;
  // Warm tiles hold a uniformly-sampled subset of the footprint; the chance
  // a random line is resident anywhere is capacity/footprint (capped at 1).
  // With few threads only their tiles are warm.
  const int cores = std::min(threads, params::kCores);
  const int warm_tiles =
      std::min(config_.tiles, (cores + params::kCoresPerTile - 1) / params::kCoresPerTile);
  const double warm_bytes = config_.l2_effectiveness *
                            static_cast<double>(config_.l2_tile_bytes) *
                            static_cast<double>(warm_tiles);
  return std::min(1.0, warm_bytes / static_cast<double>(footprint_bytes));
}

double CacheHierarchy::random_local_l2_hit(std::uint64_t footprint_bytes) const {
  if (footprint_bytes == 0) return 1.0;
  const double local = config_.l2_effectiveness * static_cast<double>(config_.l2_tile_bytes);
  return std::min(1.0, local / static_cast<double>(footprint_bytes));
}

double CacheHierarchy::random_l2_service_ns(std::uint64_t footprint_bytes,
                                            int threads) const {
  const double p_any = random_l2_hit(footprint_bytes, threads);
  if (p_any <= 0.0) return config_.l2_latency_ns;
  // Of the resident lines, the fraction in the requester's own tile is
  // 1/warm_tiles; the rest are remote-L2 forwards.
  const int cores = std::min(threads, params::kCores);
  const int warm_tiles =
      std::min(config_.tiles, (cores + params::kCoresPerTile - 1) / params::kCoresPerTile);
  const double p_local = 1.0 / static_cast<double>(warm_tiles);
  return p_local * config_.l2_latency_ns +
         (1.0 - p_local) * (config_.l2_latency_ns + mesh_.remote_l2_forward_ns());
}

double CacheHierarchy::directory_overhead_ns() const {
  return mesh_.directory_latency_ns();
}

}  // namespace knl::sim
