#include "sim/trace_machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl::sim {

TraceMachineConfig TraceMachineConfig::for_tier(const MemoryTopology& topology,
                                                std::size_t tier) {
  if (tier >= topology.tier_count()) {
    throw std::invalid_argument("TraceMachineConfig::for_tier: tier " +
                                std::to_string(tier) + " out of range (topology '" +
                                topology.name + "' has " +
                                std::to_string(topology.tier_count()) + " tiers)");
  }
  TraceMachineConfig config;
  config.node = topology.tier(tier).params;
  const int front = topology.cache_front_of(static_cast<int>(tier));
  if (front != -1) {
    const MemoryTier& front_tier = topology.tier(static_cast<std::size_t>(front));
    config.mcdram_cache_enabled = true;
    config.mcdram.capacity_bytes = front_tier.params.capacity_bytes;
    config.mcdram_node = front_tier.params;
  }
  return config;
}

TraceMachine::TraceMachine() : TraceMachine(TraceMachineConfig{}) {}

TraceMachine::TraceMachine(TraceMachineConfig config)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      tlb_(config.tlb),
      tlb_model_(config.tlb),
      mcdram_(config.mcdram, /*sample_every=*/1),
      mesh_(config.mesh) {
  if (config_.mshrs < 1) throw std::invalid_argument("TraceMachine: need >= 1 MSHR");
  if (config_.issue_ns <= 0.0) {
    throw std::invalid_argument("TraceMachine: issue_ns must be positive");
  }
  mshr_free_at_.assign(static_cast<std::size_t>(config_.mshrs), 0.0);
  // Page tables live in the same node as the data, so walk latency scales
  // with the node's idle latency (same convention as TimingModel).
  walk_node_scale_ = config_.node.idle_latency_ns / params::kDdr.idle_latency_ns;
}

void TraceMachine::reset() {
  l1_.flush();
  l1_.reset_stats();
  l2_.flush();
  l2_.reset_stats();
  mcdram_.flush();
  mcdram_.reset_stats();
  tlb_ = TlbSim(config_.tlb);
  pages_seen_.clear();
  std::fill(mshr_free_at_.begin(), mshr_free_at_.end(), 0.0);
  clock_ns_ = 0.0;
}

double TraceMachine::service(std::uint64_t addr, double ready_ns, ReplayStats& stats) {
  ++stats.accesses;

  // Address translation precedes the cache lookup; a TLB miss serializes
  // the page walk in front of the access. The walk cost depends on the
  // page-table working set observed so far (cached walks at small
  // footprints, memory walks once the tables thrash) — the discrete
  // counterpart of TlbModel::walk_cost_ns, which keeps this machine and
  // the analytic model in agreement at every footprint.
  double start_ns = ready_ns;
  if (!tlb_.access(addr)) {
    ++stats.tlb_misses;
    pages_seen_.insert(addr / config_.tlb.page_bytes);
    const std::uint64_t observed =
        static_cast<std::uint64_t>(pages_seen_.size()) * config_.tlb.page_bytes;
    start_ns += walk_node_scale_ * tlb_model_.walk_cost_ns(observed);
  }

  if (l1_.access(addr)) {
    ++stats.l1_hits;
    return start_ns + config_.l1_latency_ns;
  }

  // L1 miss: allocate an MSHR (stall until one frees if all busy).
  auto earliest = std::min_element(mshr_free_at_.begin(), mshr_free_at_.end());
  const double issue_ns = std::max(start_ns, *earliest);

  double done_ns;
  if (l2_.access(addr)) {
    ++stats.l2_hits;
    done_ns = issue_ns + config_.l1_latency_ns + config_.l2_latency_ns;
  } else {
    ++stats.memory_accesses;
    const double dir_ns = mesh_.directory_latency_ns();
    double mem_ns;
    if (config_.mcdram_cache_enabled) {
      if (mcdram_.access(addr)) {
        ++stats.mcdram_hits;
        mem_ns = config_.mcdram_node.idle_latency_ns;
      } else {
        // Memory-side tag probe, then the DDR access.
        mem_ns = config_.mcdram.tag_latency_ns + config_.node.idle_latency_ns +
                 0.25 * config_.mcdram.tag_latency_ns;
      }
    } else {
      mem_ns = config_.node.idle_latency_ns;
    }
    done_ns = issue_ns + config_.l2_latency_ns + dir_ns + mem_ns;
    *earliest = done_ns;  // MSHR busy until the fill returns
  }
  return done_ns;
}

ReplayStats TraceMachine::replay_independent(const std::vector<std::uint64_t>& addrs) {
  ReplayStats stats;
  double issue_cursor = clock_ns_;
  double last_done = clock_ns_;
  for (const std::uint64_t addr : addrs) {
    issue_cursor += config_.issue_ns;  // front-end throughput
    const double done = service(addr, issue_cursor, stats);
    last_done = std::max(last_done, done);
  }
  stats.seconds = (std::max(issue_cursor, last_done) - clock_ns_) * 1e-9;
  clock_ns_ = std::max(issue_cursor, last_done);
  return stats;
}

ReplayStats TraceMachine::replay_chained(const std::vector<std::uint64_t>& addrs,
                                         int chains) {
  if (chains < 1) throw std::invalid_argument("replay_chained: need >= 1 chain");
  ReplayStats stats;
  // chain_ready[k]: completion time of the previous access of chain k.
  std::vector<double> chain_ready(static_cast<std::size_t>(chains), clock_ns_);
  double last_done = clock_ns_;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::size_t k = i % static_cast<std::size_t>(chains);
    const double done = service(addrs[i], chain_ready[k] + config_.issue_ns, stats);
    chain_ready[k] = done;
    last_done = std::max(last_done, done);
  }
  stats.seconds = (last_done - clock_ns_) * 1e-9;
  clock_ns_ = last_done;
  return stats;
}

}  // namespace knl::sim
