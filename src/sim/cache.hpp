// Exact set-associative cache simulator with optional set sampling.
//
// Used two ways:
//   - exact mode for the L1/L2 hierarchy at test scale, validating the
//     analytic hit-rate expressions in CacheHierarchy;
//   - sampled mode for the MCDRAM direct-mapped memory-side cache, whose
//     full tag store (16 GiB / 64 B lines) is too large to hold — only sets
//     whose index falls in a deterministic sample are simulated, which is
//     unbiased for the address streams we replay (sequential sweeps and
//     uniform-random).  See docs/ARCHITECTURE.md ("Set sampling and its
//     error bound") for the SMARTS-style error analysis.
//
// Storage is flat: set-indexed tag/tick arrays carved into lazily-allocated
// slabs, so a 16 GiB direct-mapped tag store costs memory proportional to
// the sets actually touched while every access is array indexing — no
// hashing, no per-set allocation.  `line_bytes` and `ways` are required to
// be powers of two so the index math is shifts and masks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace knl::sim {

struct CacheConfig {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t line_bytes = 64;  ///< must be a power of two
  int ways = 1;                   ///< 1 = direct-mapped; must be a power of two
  /// Simulate only every `sample_every`-th set (1 = exact).
  std::uint64_t sample_every = 1;

  [[nodiscard]] std::uint64_t num_sets() const {
    return capacity_bytes / (line_bytes * static_cast<std::uint64_t>(ways));
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;  ///< Accesses that fell in sampled sets.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

/// Result of one batched access_block() call (counts sampled sets only).
struct BlockStats {
  std::uint64_t sampled = 0;  ///< accesses that fell in sampled sets
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// LRU set-associative cache over 64-bit byte addresses.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Access one byte address; returns true on hit. Accesses mapping to
  /// non-sampled sets return true without being recorded (they do not
  /// perturb the stats).
  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t set_idx = set_of(line);
    if (config_.sample_every != 1 && set_idx % config_.sample_every != 0) {
      return true;  // not sampled
    }
    return access_sampled(line, set_idx);
  }

  /// Replay a whole block of addresses; returns the block's own hit/miss
  /// counts (cumulative stats() are updated as well). This is the batched
  /// hot path: for power-of-two geometry the block is staged through SoA
  /// set/tag arrays filled by the runtime-dispatched SIMD decompose kernels
  /// (sim/simd.hpp), then applied by a stateful LRU pass dispatched once per
  /// block on the compile-time way count, so the inner loop is fully
  /// unrolled. Bit-identical to calling access() per address.
  BlockStats access_block(std::span<const std::uint64_t> addrs);

  /// Batched access that additionally records the per-address outcome:
  /// hit_out[i] = 1 when addrs[i] hit (non-sampled sets report 1, exactly
  /// like access()). This is the classification hand-off ParallelReplay
  /// uses to chain L1 -> L2 without falling back to per-address calls.
  BlockStats access_block_flags(const std::uint64_t* addrs, std::size_t n,
                                std::uint8_t* hit_out);

  /// Touch every line of [addr, addr+bytes); returns number of line misses
  /// among sampled sets.
  std::uint64_t access_range(std::uint64_t addr, std::uint64_t bytes);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Lines currently resident (in sampled sets).
  [[nodiscard]] std::uint64_t resident_lines() const noexcept { return resident_; }

  void reset_stats() noexcept { stats_ = {}; }
  void flush();

 private:
  /// Sampled sets per lazily-allocated storage slab: one slab of a
  /// direct-mapped cache is 32 Ki sets x 16 B = 512 KiB, small enough that
  /// sparse replays stay cheap and large enough that dense replays touch
  /// one allocation per ~2 GiB of cached footprint.
  static constexpr std::uint64_t kSlabSetShift = 15;
  static constexpr std::uint64_t kSlabSets = 1ull << kSlabSetShift;

  struct Slab {
    // Parallel arrays indexed by (set-within-slab * ways + way).
    // tick == 0 marks an invalid way (global tick starts at 1).
    std::vector<std::uint64_t> tag;
    std::vector<std::uint64_t> tick;
  };

  [[nodiscard]] std::uint64_t set_of(std::uint64_t line) const {
    return sets_pow2_ ? (line & set_mask_) : (line % num_sets_);
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const {
    return sets_pow2_ ? (line >> set_shift_) : (line / num_sets_);
  }

  /// Slab memoization cursor threaded through one batched call: sweeps and
  /// chases revisit the same slab for long runs, so the pointer pair is
  /// resolved once per slab change, not per address.
  struct SlabCursor {
    std::uint64_t idx = ~0ull;
    std::uint64_t* tags = nullptr;
    std::uint64_t* ticks = nullptr;
  };

  Slab& slab_for(std::uint64_t sampled_idx);
  bool access_sampled(std::uint64_t line, std::uint64_t set_idx);

  /// SoA pipeline for power-of-two geometry: decompose `addrs` into the
  /// scratch set/tag arrays (SIMD-dispatched), then run the stateful LRU
  /// apply pass. kFlags additionally writes per-address hit bytes.
  template <int kWays, bool kFlags>
  BlockStats access_block_soa(const std::uint64_t* addrs, std::size_t n,
                              std::uint8_t* hit_out);
  /// Stateful LRU pass over precomputed (sampled set, tag) pairs; the per-way
  /// scan unrolls at compile time. Accumulates into the caller's counters.
  template <int kWays, bool kFlags>
  void apply_block_pow2(const std::uint64_t* sets, const std::uint64_t* tags,
                        std::size_t n, std::uint8_t* hit_out, BlockStats& block,
                        std::uint64_t& evictions, std::uint64_t& filled,
                        SlabCursor& cursor);

  /// Scalar fallback for non-power-of-two set counts or sampling strides
  /// (division/modulo index math, otherwise the same one-pass LRU scan).
  template <int kWays>
  BlockStats access_block_scalar(std::span<const std::uint64_t> addrs);
  BlockStats access_block_generic(std::span<const std::uint64_t> addrs);

  void ensure_soa_scratch();

  CacheConfig config_;
  std::uint64_t num_sets_ = 0;
  std::uint64_t num_sampled_sets_ = 0;
  unsigned line_shift_ = 0;
  bool sets_pow2_ = false;
  unsigned set_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t resident_ = 0;
  CacheStats stats_;
  // Lazily materialized flat storage: slabs_[sampled_idx >> kSlabSetShift].
  std::vector<std::unique_ptr<Slab>> slabs_;
  // SoA staging arrays (simd::kSoaChunk entries each), lazily allocated on
  // the thread that first replays a block — under the sharded replay that is
  // the shard's worker, so first-touch keeps the scratch NUMA-local.
  std::vector<std::uint64_t> soa_set_;
  std::vector<std::uint64_t> soa_tag_;
};

}  // namespace knl::sim
