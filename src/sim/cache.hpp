// Exact set-associative cache simulator with optional set sampling.
//
// Used two ways:
//   - exact mode for the L1/L2 hierarchy at test scale, validating the
//     analytic hit-rate expressions in CacheHierarchy;
//   - sampled mode for the MCDRAM direct-mapped memory-side cache, whose
//     full tag store (16 GiB / 64 B lines) is too large to hold — only sets
//     whose index falls in a deterministic sample are simulated, which is
//     unbiased for the address streams we replay (sequential sweeps and
//     uniform-random).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace knl::sim {

struct CacheConfig {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t line_bytes = 64;
  int ways = 1;  ///< 1 = direct-mapped.
  /// Simulate only every `sample_every`-th set (1 = exact).
  std::uint64_t sample_every = 1;

  [[nodiscard]] std::uint64_t num_sets() const {
    return capacity_bytes / (line_bytes * static_cast<std::uint64_t>(ways));
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;  ///< Accesses that fell in sampled sets.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

/// LRU set-associative cache over 64-bit byte addresses.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Access one byte address; returns true on hit. Accesses mapping to
  /// non-sampled sets return true without being recorded (they do not
  /// perturb the stats).
  bool access(std::uint64_t addr);

  /// Touch every line of [addr, addr+bytes); returns number of line misses
  /// among sampled sets.
  std::uint64_t access_range(std::uint64_t addr, std::uint64_t bytes);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Lines currently resident (in sampled sets).
  [[nodiscard]] std::uint64_t resident_lines() const noexcept { return resident_; }

  void reset_stats() noexcept { stats_ = {}; }
  void flush();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-access tick
    bool valid = false;
  };

  CacheConfig config_;
  std::uint64_t num_sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t resident_ = 0;
  CacheStats stats_;
  // Sparse set storage: only sampled, touched sets are materialized.
  std::unordered_map<std::uint64_t, std::vector<Way>> sets_;
};

}  // namespace knl::sim
