// Per-process page table of the simulated machine: virtual page -> frame.
//
// The allocator layer (memkind / numactl analogues) maps virtual ranges onto
// frames obtained from PhysicalMemory according to the active placement
// policy; workload profiles then resolve which node serves each region.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/physical_memory.hpp"

namespace knl::sim {

struct Mapping {
  std::uint64_t vpage;  ///< virtual page number
  Frame frame;
};

class PageTable {
 public:
  explicit PageTable(std::uint64_t page_bytes = params::kPageBytes)
      : page_bytes_(page_bytes) {}

  [[nodiscard]] std::uint64_t page_bytes() const noexcept { return page_bytes_; }

  /// Map a contiguous virtual page range [first_vpage, first_vpage+n) onto
  /// the given frames (frames.size() == n). Throws if any page is already
  /// mapped — a double map is always a bug in the allocator above.
  void map_range(std::uint64_t first_vpage, const std::vector<Frame>& frames);

  /// Remove mappings for [first_vpage, first_vpage+n); returns the frames
  /// that backed them, for the caller to return to PhysicalMemory.
  std::vector<Frame> unmap_range(std::uint64_t first_vpage, std::uint64_t n);

  /// Translate a virtual byte address.
  [[nodiscard]] std::optional<Frame> translate(std::uint64_t vaddr) const;

  /// Count of mapped pages per node within a virtual byte range — used to
  /// attribute a buffer's traffic to nodes (interleaved placements split).
  struct NodeSplit {
    std::uint64_t ddr_pages = 0;
    std::uint64_t hbm_pages = 0;
    [[nodiscard]] std::uint64_t total() const { return ddr_pages + hbm_pages; }
    [[nodiscard]] double hbm_fraction() const {
      const std::uint64_t t = total();
      return t == 0 ? 0.0 : static_cast<double>(hbm_pages) / static_cast<double>(t);
    }
  };
  [[nodiscard]] NodeSplit node_split(std::uint64_t vaddr, std::uint64_t bytes) const;

  [[nodiscard]] std::size_t mapped_pages() const noexcept { return table_.size(); }

 private:
  std::uint64_t page_bytes_;
  std::unordered_map<std::uint64_t, Frame> table_;
};

}  // namespace knl::sim
