// Single-pass reuse-distance profiling (Mattson's stack algorithm).
//
// The LRU inclusion property says a W-way LRU set hits an access exactly
// when fewer than W distinct lines mapping to the same set were touched
// since the access's last use — its per-set *stack distance*. One profiling
// pass over a trace therefore yields the exact hit count of *every* cache
// built on the same (line, set, sampling) geometry: hits(W) is just the
// histogram prefix sum over distances < W. This is what lets the sweep
// engine (report/sweep.hpp SweepPlanner) derive a whole capacity grid from
// one replay instead of re-simulating the trace per cell.
//
// The address decomposition mirrors CacheSim exactly — same line/set/tag
// math, same set-sampling rule (set % sample_every == 0) — staged through
// the runtime-dispatched SIMD decompose kernels (sim/simd.hpp) for
// power-of-two geometry, so hits_for_ways(W) equals CacheSim's hit counter
// bit-for-bit for any pow2 W (property-tested in tests/sim).
//
// Two internal stack representations, chosen by expected per-set occupancy:
//   - kMtf:     per-set recency-ordered tag list; distance = list position.
//               O(distinct-per-set) per access — the sweep-grid case, where
//               many sets keep each set's list a few dozen entries.
//   - kFenwick: per-set append-only Fenwick tree counting latest-occurrence
//               marks (Bennett-Kruskal); distance = marks in (last, now].
//               O(log n) per access regardless of depth — the analyzer
//               case (few sets, fully-associative-style deep stacks).
// Both produce identical histograms (tested); kAuto picks by set count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace knl::sim {

enum class ReuseStrategy : int {
  kAuto = 0,     ///< kMtf when num_sets >= 4096, else kFenwick
  kMtf = 1,
  kFenwick = 2,
};

struct ReuseProfileConfig {
  std::uint64_t line_bytes = 64;  ///< must be a power of two
  std::uint64_t num_sets = 1;     ///< >= 1 (1 = fully associative stack)
  /// Profile only sets with index % sample_every == 0 (CacheSim's rule).
  std::uint64_t sample_every = 1;
  /// Distances >= max_depth land in the beyond-depth bucket instead of the
  /// histogram; hits_for_ways() rejects ways past this bound (the pass did
  /// not keep the information to answer them).
  std::uint64_t max_depth = 1ull << 22;
  ReuseStrategy strategy = ReuseStrategy::kAuto;
  /// Parallel-profiling shard filter: profile only sampled sets with
  /// sampled_index % shard_stride == shard_phase. Shards over disjoint
  /// phases merge() into the exact unsharded profile (distances are
  /// per-set, so set partitioning is lossless).
  std::uint64_t shard_stride = 1;
  std::uint64_t shard_phase = 0;
};

/// Per-set reuse-distance histogram accumulated over observed addresses.
class ReuseProfile {
 public:
  explicit ReuseProfile(ReuseProfileConfig config = {});

  /// Feed a block of byte addresses (chunked through the SIMD decompose
  /// kernels for pow2 geometry). Order matters; split calls concatenate.
  void observe(const std::uint64_t* addrs, std::size_t n);
  void observe(std::span<const std::uint64_t> addrs) {
    observe(addrs.data(), addrs.size());
  }

  [[nodiscard]] const ReuseProfileConfig& config() const noexcept { return config_; }
  /// Accesses that fell in sampled (and shard-owned) sets — the denominator
  /// of every hit rate, mirroring CacheStats::accesses.
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }
  /// First touches (compulsory misses at every capacity).
  [[nodiscard]] std::uint64_t cold_misses() const noexcept { return cold_; }
  [[nodiscard]] std::uint64_t reuses() const noexcept { return sampled_ - cold_; }
  /// Reuses at distance >= max_depth (misses at every tracked capacity).
  [[nodiscard]] std::uint64_t beyond_depth() const noexcept { return beyond_; }
  /// histogram()[d] = reuses at per-set stack distance d (d < max_depth).
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }

  /// Exact hits of a `ways`-associative LRU cache on this geometry:
  /// sum of histogram below `ways`. Throws std::invalid_argument when
  /// ways > max_depth (the histogram cannot answer).
  [[nodiscard]] std::uint64_t hits_for_ways(std::uint64_t ways) const;
  /// hits_for_ways(capacity / (line_bytes * num_sets)).
  [[nodiscard]] std::uint64_t hits_for_capacity(std::uint64_t capacity_bytes) const;
  /// hits_for_capacity / sampled (0 when nothing was sampled).
  [[nodiscard]] double hit_rate_for_capacity(std::uint64_t capacity_bytes) const;

  /// Fuse another shard's counters into this profile. Requires identical
  /// geometry (line/sets/sampling/depth); shard fields may differ — that is
  /// the point.
  void merge(const ReuseProfile& other);

  void reset();

 private:
  struct FenwickSet {
    std::vector<std::uint64_t> tree;  ///< 1-indexed BIT over access times
    std::unordered_map<std::uint64_t, std::uint64_t> last;  ///< tag -> time
    std::uint64_t now = 0;
  };

  void observe_scalar(const std::uint64_t* addrs, std::size_t n);
  void apply(std::uint64_t sampled_idx, std::uint64_t tag);
  void apply_mtf(std::vector<std::uint64_t>& set, std::uint64_t tag);
  void apply_fenwick(FenwickSet& set, std::uint64_t tag);
  void record_distance(std::uint64_t distance);
  void ensure_cumulative() const;

  ReuseProfileConfig config_;
  bool use_mtf_ = false;
  bool pow2_path_ = false;
  unsigned line_shift_ = 0;
  unsigned set_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  unsigned sample_shift_ = 0;
  std::uint64_t sample_mask_ = 0;
  std::uint64_t num_sampled_sets_ = 0;

  std::uint64_t sampled_ = 0;
  std::uint64_t cold_ = 0;
  std::uint64_t beyond_ = 0;
  std::vector<std::uint64_t> histogram_;
  /// Lazily rebuilt prefix sums of histogram_ (hits_for_ways is O(1) per
  /// query once built; observe() invalidates).
  mutable std::vector<std::uint64_t> cumulative_;
  mutable bool cumulative_valid_ = false;

  std::vector<std::vector<std::uint64_t>> mtf_;  ///< per sampled set, MRU first
  std::vector<FenwickSet> fenwick_;              ///< per sampled set
  /// SoA staging scratch (simd::kSoaChunk entries each), lazily allocated.
  std::vector<std::uint64_t> soa_set_;
  std::vector<std::uint64_t> soa_tag_;
};

/// One profiling pass over `addrs`, sharded across `workers` pool threads by
/// sampled-set ownership (sampled_index % shards). Distances are per-set, so
/// the merged result is bit-identical to a serial observe() for every worker
/// count. workers <= 1 profiles inline.
[[nodiscard]] ReuseProfile profile_trace(const std::uint64_t* addrs, std::size_t n,
                                         const ReuseProfileConfig& config,
                                         int workers = 1);

/// Hit/sampled counters of one exact per-cell replay — the reference the
/// single-pass engine is validated against (and the retained per-cell sweep
/// path). Power-of-two way counts delegate to CacheSim's batched SoA engine;
/// other way counts run a per-set bounded MTF list with the same geometry
/// and sampling rules.
struct CapacityReference {
  std::uint64_t sampled = 0;
  std::uint64_t hits = 0;
};
[[nodiscard]] CapacityReference replay_capacity_reference(
    const std::uint64_t* addrs, std::size_t n, const ReuseProfileConfig& geometry,
    std::uint64_t ways);

}  // namespace knl::sim
