// Calibrated machine parameters for the simulated KNL 7210 node.
//
// Every constant here is anchored either to a number the paper states
// directly (§II, §III-A, §IV-A) or to a value back-derived from the paper's
// measured curves.  The calibration anchors are asserted by
// tests/sim/timing_calibration_test.cpp so any drift is caught by ctest.
//
// Anchors from the paper:
//   - DDR:    96 GB, ~90 GB/s peak, STREAM triad measures 77 GB/s,
//             130.4 ns idle latency.
//   - MCDRAM: 16 GB, ~400+ GB/s peak, STREAM triad measures 330 GB/s with
//             1 HT/core and up to ~420-450 GB/s with >=2 HT/core,
//             154.0 ns idle latency (~18% above DDR).
//   - Cache mode STREAM: 260 GB/s @ 8 GB, 125 GB/s @ 11.4 GB,
//             below DDR beyond ~24 GB.
//   - Core:   64 cores @ 1.3 GHz, 4 hardware threads/core, 32 KB L1/core,
//             1 MB L2 per 2-core tile (32 tiles -> 32 MB aggregate L2).
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace knl::params {

// ---------------------------------------------------------------------------
// Topology (paper §II / §III-A, KNL model 7210).
// ---------------------------------------------------------------------------
inline constexpr int kCores = 64;
inline constexpr int kSmtPerCore = 4;
inline constexpr int kMaxThreads = kCores * kSmtPerCore;
inline constexpr int kCoresPerTile = 2;
inline constexpr int kTiles = kCores / kCoresPerTile;  // 32 active tiles
inline constexpr double kClockGHz = 1.3;

// ---------------------------------------------------------------------------
// Cache hierarchy.
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kLineBytes = 64;
inline constexpr std::uint64_t kL1Bytes = 32 * KiB;  // per core, 8-way
inline constexpr int kL1Ways = 8;
inline constexpr std::uint64_t kL2Bytes = 1 * MiB;  // per tile, 16-way
inline constexpr int kL2Ways = 16;
inline constexpr std::uint64_t kL2AggregateBytes = kTiles * kL2Bytes;  // 32 MiB

// Latency tiers measured by the dual-random-read probe (paper Fig. 3):
// ~10 ns within the local L2, ~200 ns loaded latency out to memory.
inline constexpr double kL1LatencyNs = 2.3;    // ~3 cycles @1.3GHz
inline constexpr double kL2LatencyNs = 10.0;   // paper Fig. 3 tier 1
// Extra cost of a directory lookup + mesh traversal + remote L2 forward for
// lines resident in another tile's L2 (MESIF cache-to-cache forwarding).
inline constexpr double kMeshForwardLatencyNs = 42.0;

// ---------------------------------------------------------------------------
// Memory nodes (idle = unloaded round-trip latency; the Fig. 3 probe measures
// a *loaded* figure that also includes directory/mesh and paging effects,
// which the TimingModel adds on top).
// ---------------------------------------------------------------------------
struct NodeParams {
  std::uint64_t capacity_bytes;
  double peak_bw_gbs;        // data-sheet peak
  double stream_bw_gbs;      // attainable streaming bandwidth (STREAM cap)
  double random_bw_gbs;      // attainable bandwidth under random line access
  double idle_latency_ns;    // paper §IV-A

  friend constexpr bool operator==(const NodeParams&, const NodeParams&) = default;
};

inline constexpr NodeParams kDdr{
    .capacity_bytes = 96 * GiB,
    .peak_bw_gbs = 90.0,
    .stream_bw_gbs = 77.0,   // paper Fig. 2 plateau
    .random_bw_gbs = 40.0,   // line-granular random: page-miss bound, 6 chan
    .idle_latency_ns = 130.4,
};

inline constexpr NodeParams kHbm{
    .capacity_bytes = 16 * GiB,
    .peak_bw_gbs = 450.0,    // paper: "as high as 420 GB/s" with HT, headroom
    .stream_bw_gbs = 455.0,  // asymptotic STREAM cap at 4 HT (Fig. 5)
    .random_bw_gbs = 240.0,  // 8 MCDRAM devices, high bank parallelism
    .idle_latency_ns = 154.0,
};

// ---------------------------------------------------------------------------
// Memory-level parallelism model (the heart of the Little's-law timing).
//
// Regular/streaming phases: the L2 hardware prefetcher keeps a per-core
// complement of outstanding line fills; SMT adds a modest boost because two
// threads cover prefetch-train startup gaps.  Calibrated so that
//   HBM stream @1HT: 64 cores * 12.4 lines * 64 B / 154 ns = 330 GB/s,
//   HBM stream @2HT: *1.27 = 419 GB/s (paper Fig. 5),
//   DDR stream: demand >> 90 GB/s at any HT => capped at 77 GB/s always.
// ---------------------------------------------------------------------------
inline constexpr double kSeqMlpPerCore = 12.4;  // outstanding lines, 1 HT
/// Multiplier on per-core streaming MLP for 1..4 hardware threads per core.
inline constexpr std::array<double, 4> kSeqSmtScale{1.00, 1.27, 1.35, 1.40};

// Random (no-prefetch) phases: bounded by per-thread out-of-order window /
// fill buffers.  A thread of a pointer-dereferencing loop sustains only a
// couple of outstanding misses; four SMT threads multiply the per-core total.
inline constexpr double kRandMlpPerThread = 2.0;
/// SMT efficiency for random access: sub-linear (shared fill buffers and
/// OoO resources per core), calibrated to the Fig. 6c/6d thread sweeps.
inline constexpr std::array<double, 4> kRandSmtScale{1.00, 0.90, 0.80, 0.70};

// Dependent pointer-chase: exactly `chains` outstanding requests per thread.
inline constexpr double kChaseMlpPerChain = 1.0;

// ---------------------------------------------------------------------------
// TLB / paging model.  Drives the latency rise beyond 128 MB in Fig. 3.
// The testbed runs with 2 MiB huge pages (Cray default for HPC jobs);
// 128 L2-TLB entries cover 256 MiB.
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kPageBytes = 2 * MiB;
/// 64 L2-TLB entries for 2 MiB pages -> 128 MiB coverage: the paper's Fig. 3
/// latency rise "starting from 128 MB".
inline constexpr int kTlbEntries = 64;
inline constexpr std::uint64_t kTlbCoverageBytes = kTlbEntries * kPageBytes;
/// Cost of a page walk whose entries hit in the L2 cache.
inline constexpr double kPageWalkCachedNs = 25.0;
/// Cost of a page walk that must fetch entries from memory (large
/// footprints); scaled by the bound node's latency in the timing model
/// because the page tables live in the bound node too.
inline constexpr double kPageWalkMemoryNs = 350.0;
/// Footprint at which walk entries themselves stop fitting in cache.
inline constexpr std::uint64_t kWalkThrashBytes = 512 * MiB;

// ---------------------------------------------------------------------------
// MCDRAM cache mode (direct-mapped memory-side cache, paper §II + Fig. 2).
// ---------------------------------------------------------------------------
/// Tag check is itself an MCDRAM access (memory-side cache): a miss has
/// spent most of an MCDRAM trip before the DDR access even starts.
inline constexpr double kMcdramTagLatencyNs = 60.0;
/// Extra per-byte miss-path cost (fill write + replacement traffic),
/// expressed as seconds per decimal GB (i.e. 0.004 s/GB == 4 ns/KB).
inline constexpr double kMcdramMissOverheadSPerGB = 0.0040;
/// Sweep-reuse hit-rate model 1/(1+(rho/kSweepKnee)^kSweepSharpness) with
/// rho = footprint/capacity. Solved from the paper's cache-mode STREAM
/// anchors: 260 GB/s @ 8 GB (h=0.89), 125 GB/s @ 11.4 GB (h=0.61),
/// below-DRAM @ 22.8 GB (h=0.06).
inline constexpr double kSweepKnee = 0.78;
inline constexpr double kSweepSharpness = 4.63;

// ---------------------------------------------------------------------------
// Compute model (only DGEMM approaches it).  KNL 7210: 2x AVX-512 FMA units,
// but with 1 thread/core the back-to-back FMA latency cannot be hidden, so
// attainable peak grows with SMT (paper Fig. 6a: 1.7x from 64->192 threads).
// ---------------------------------------------------------------------------
inline constexpr double kPeakFlopsPerCycle = 32.0;  // 2 FMA * 8 DP * 2
inline constexpr std::array<double, 4> kComputeSmtScale{0.50, 0.78, 0.88, 0.92};

/// Attainable DP GFLOPS for `ht` hardware threads/core (all 64 cores busy).
[[nodiscard]] constexpr double attainable_gflops(int ht) {
  const double peak = kCores * kClockGHz * kPeakFlopsPerCycle;
  return peak * kComputeSmtScale[static_cast<std::size_t>(ht - 1)];
}

// NUMA distances reported by `numactl --hardware` on the testbed (Table II).
inline constexpr int kNumaDistanceLocal = 10;
inline constexpr int kNumaDistanceRemote = 31;

}  // namespace knl::params
