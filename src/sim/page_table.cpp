#include "sim/page_table.hpp"

#include <stdexcept>

namespace knl::sim {

void PageTable::map_range(std::uint64_t first_vpage, const std::vector<Frame>& frames) {
  // Validate the whole range before inserting anything so a failed map has
  // no partial effect.
  for (std::uint64_t i = 0; i < frames.size(); ++i) {
    if (table_.contains(first_vpage + i)) {
      throw std::logic_error("PageTable::map_range: virtual page already mapped");
    }
  }
  for (std::uint64_t i = 0; i < frames.size(); ++i) {
    table_.emplace(first_vpage + i, frames[static_cast<std::size_t>(i)]);
  }
}

std::vector<Frame> PageTable::unmap_range(std::uint64_t first_vpage, std::uint64_t n) {
  std::vector<Frame> frames;
  frames.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto it = table_.find(first_vpage + i);
    if (it == table_.end()) {
      throw std::logic_error("PageTable::unmap_range: virtual page not mapped");
    }
    frames.push_back(it->second);
    table_.erase(it);
  }
  return frames;
}

std::optional<Frame> PageTable::translate(std::uint64_t vaddr) const {
  auto it = table_.find(vaddr / page_bytes_);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

PageTable::NodeSplit PageTable::node_split(std::uint64_t vaddr, std::uint64_t bytes) const {
  NodeSplit split;
  if (bytes == 0) return split;
  const std::uint64_t first = vaddr / page_bytes_;
  const std::uint64_t last = (vaddr + bytes - 1) / page_bytes_;
  for (std::uint64_t p = first; p <= last; ++p) {
    auto it = table_.find(p);
    if (it == table_.end()) continue;
    if (it->second.node == MemNode::DDR) {
      ++split.ddr_pages;
    } else {
      ++split.hbm_pages;
    }
  }
  return split;
}

}  // namespace knl::sim
