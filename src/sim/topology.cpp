#include "sim/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/fault/error.hpp"
#include "core/types.hpp"

namespace knl::sim {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mix(std::uint64_t& h, T value) {
  mix_bytes(h, &value, sizeof(value));
}

void mix_string(std::uint64_t& h, const std::string& s) {
  const std::size_t n = s.size();
  mix(h, n);
  mix_bytes(h, s.data(), n);
}

/// Exact round-trip double formatting ("%.17g" survives strtod). Prefers the
/// shortest *plain* spelling (154, 130.4) over scientific notation so the
/// machine files stay human-readable.
std::string format_double(double v) {
  std::string exponent_form;
  for (int precision = 1; precision <= 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) != v) continue;
    if (std::string(candidate).find('e') == std::string::npos) return candidate;
    if (exponent_form.empty()) exponent_form = candidate;
  }
  return exponent_form;
}

std::string trim(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw Error::corrupt_input(
      "topology/parse", "machine file line " + std::to_string(line) + ": " + what);
}

double parse_double(const std::string& value, int line) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    parse_fail(line, "expected a number, got '" + value + "'");
  }
  return parsed;
}

/// Byte counts accept raw integers or KiB/MiB/GiB/TiB suffixes.
std::uint64_t parse_bytes(const std::string& value, int line) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || parsed < 0.0) {
    parse_fail(line, "expected a byte count, got '" + value + "'");
  }
  const std::string suffix = trim(std::string(end));
  double scale = 1.0;
  if (suffix == "KiB") {
    scale = static_cast<double>(KiB);
  } else if (suffix == "MiB") {
    scale = static_cast<double>(MiB);
  } else if (suffix == "GiB") {
    scale = static_cast<double>(GiB);
  } else if (suffix == "TiB") {
    scale = static_cast<double>(GiB) * 1024.0;
  } else if (!suffix.empty()) {
    parse_fail(line, "unknown byte suffix '" + suffix + "' (KiB/MiB/GiB/TiB)");
  }
  return static_cast<std::uint64_t>(parsed * scale);
}

}  // namespace

std::string to_string(TierKind kind) {
  switch (kind) {
    case TierKind::HBM: return "hbm";
    case TierKind::DRAM: return "dram";
    case TierKind::NVM: return "nvm";
  }
  return "unknown";
}

double TierPlacement::fraction_in(int tier) const {
  const std::uint64_t total = total_bytes();
  if (!ok || total == 0) return 0.0;
  for (const TierShare& share : shares) {
    if (share.tier == tier) {
      return static_cast<double>(share.bytes) / static_cast<double>(total);
    }
  }
  return 0.0;
}

std::uint64_t TierPlacement::total_bytes() const {
  std::uint64_t total = 0;
  for (const TierShare& share : shares) total += share.bytes;
  return total;
}

void MemoryTopology::validate() const {
  if (tiers.empty()) {
    throw Error::corrupt_input("topology/empty",
                               "machine '" + name + "' declares no memory tiers");
  }
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const MemoryTier& t = tiers[i];
    const std::string where = "machine '" + name + "' tier " + std::to_string(i) +
                              " ('" + t.name + "')";
    if (t.name.empty()) {
      throw Error::corrupt_input("topology/duplicate-name", where + ": empty tier name");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (tiers[j].name == t.name) {
        throw Error::corrupt_input("topology/duplicate-name",
                                   where + ": name already used by tier " +
                                       std::to_string(j));
      }
    }
    if (t.params.capacity_bytes == 0) {
      throw Error::corrupt_input("topology/zero-capacity",
                                 where + ": tier capacity must be positive");
    }
    if (t.params.peak_bw_gbs <= 0.0 || t.params.stream_bw_gbs <= 0.0 ||
        t.params.random_bw_gbs <= 0.0 || t.params.idle_latency_ns <= 0.0) {
      throw Error::corrupt_input(
          "topology/bad-envelope",
          where + ": bandwidths and latency must be positive");
    }
    if (t.controllers_end <= t.controllers_begin || t.controllers_begin < 0) {
      throw Error::corrupt_input(
          "topology/bad-range",
          where + ": controller range [" + std::to_string(t.controllers_begin) + ", " +
              std::to_string(t.controllers_end) + ") is empty or negative");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const MemoryTier& other = tiers[j];
      const bool disjoint = t.controllers_end <= other.controllers_begin ||
                            other.controllers_end <= t.controllers_begin;
      if (!disjoint) {
        throw Error::corrupt_input(
            "topology/overlapping-ranges",
            where + ": controller range overlaps tier " + std::to_string(j) + " ('" +
                other.name + "')");
      }
    }
    if (t.backing == static_cast<int>(i) || t.backing < -1 ||
        t.backing >= static_cast<int>(tiers.size())) {
      throw Error::corrupt_input(
          "topology/bad-backing",
          where + ": backing index " + std::to_string(t.backing) +
              " is out of range or self-referential");
    }
    if (t.cache_front && t.backing == -1) {
      throw Error::corrupt_input(
          "topology/bad-cache-front",
          where + ": cache_front requires a backing tier to cache");
    }
  }
  // Cycle detection over the backing edges: each chain must terminate
  // within tier_count() hops.
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    int current = static_cast<int>(i);
    for (std::size_t hops = 0; hops <= tiers.size(); ++hops) {
      current = tiers[static_cast<std::size_t>(current)].backing;
      if (current == -1) break;
      if (current == static_cast<int>(i)) {
        throw Error::corrupt_input(
            "topology/backing-cycle",
            "machine '" + name + "': backing-store references form a cycle through "
            "tier " + std::to_string(i) + " ('" + tiers[i].name + "')");
      }
    }
  }
}

int MemoryTopology::find_tier(const std::string& tier_name) const {
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].name == tier_name) return static_cast<int>(i);
  }
  return -1;
}

int MemoryTopology::fast_tier() const {
  int best = 0;
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    if (tiers[i].params.stream_bw_gbs >
        tiers[static_cast<std::size_t>(best)].params.stream_bw_gbs) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int MemoryTopology::dram_tier() const {
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].kind == TierKind::DRAM) return static_cast<int>(i);
  }
  int best = 0;
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    if (tiers[i].params.capacity_bytes >
        tiers[static_cast<std::size_t>(best)].params.capacity_bytes) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<int> MemoryTopology::spill_chain(int from) const {
  std::vector<int> chain;
  int current = from;
  while (current != -1 && chain.size() <= tiers.size()) {
    chain.push_back(current);
    current = tiers.at(static_cast<std::size_t>(current)).backing;
  }
  return chain;
}

int MemoryTopology::cache_front_of(int backing_tier) const {
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].cache_front && tiers[i].backing == backing_tier) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::uint64_t MemoryTopology::total_capacity_bytes() const {
  std::uint64_t total = 0;
  for (const MemoryTier& t : tiers) total += t.params.capacity_bytes;
  return total;
}

std::string MemoryTopology::tier_names() const {
  std::string names;
  for (const MemoryTier& t : tiers) {
    if (!names.empty()) names += ",";
    names += t.name;
  }
  return names;
}

void MemoryTopology::mix_fingerprint(std::uint64_t& h) const {
  mix_string(h, name);
  mix(h, tiers.size());
  for (const MemoryTier& t : tiers) {
    mix_string(h, t.name);
    mix(h, t.kind);
    mix(h, t.params.capacity_bytes);
    mix(h, t.params.peak_bw_gbs);
    mix(h, t.params.stream_bw_gbs);
    mix(h, t.params.random_bw_gbs);
    mix(h, t.params.idle_latency_ns);
    mix(h, t.controllers_begin);
    mix(h, t.controllers_end);
    mix(h, t.backing);
    mix(h, t.cache_front);
  }
}

std::string MemoryTopology::to_machine_file() const {
  std::ostringstream os;
  os << "# knlmem machine file (see docs/MACHINES.md)\n";
  os << "machine = " << name << "\n";
  os << "tiers = " << tiers.size() << "\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const MemoryTier& t = tiers[i];
    os << "\n[tier " << i << "]\n";
    os << "name = " << t.name << "\n";
    os << "kind = " << to_string(t.kind) << "\n";
    os << "controllers = " << t.controllers_begin << ".." << t.controllers_end << "\n";
    os << "capacity_bytes = " << t.params.capacity_bytes << "\n";
    os << "peak_bw_gbs = " << format_double(t.params.peak_bw_gbs) << "\n";
    os << "stream_bw_gbs = " << format_double(t.params.stream_bw_gbs) << "\n";
    os << "random_bw_gbs = " << format_double(t.params.random_bw_gbs) << "\n";
    os << "idle_latency_ns = " << format_double(t.params.idle_latency_ns) << "\n";
    os << "backing = "
       << (t.backing == -1 ? std::string("none")
                           : tiers.at(static_cast<std::size_t>(t.backing)).name)
       << "\n";
    os << "cache_front = " << (t.cache_front ? "true" : "false") << "\n";
  }
  return os.str();
}

MemoryTopology MemoryTopology::parse_machine_file(const std::string& text) {
  MemoryTopology topology;
  topology.name.clear();
  std::vector<std::string> backing_names;  // resolved after all tiers parse

  std::istringstream is(text);
  std::string raw;
  int line_number = 0;
  int current_tier = -1;
  std::size_t declared_tiers = 0;

  while (std::getline(is, raw)) {
    ++line_number;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') parse_fail(line_number, "unterminated section header");
      const std::string inner = trim(line.substr(1, line.size() - 2));
      if (inner.rfind("tier ", 0) != 0) {
        parse_fail(line_number, "unknown section '" + inner + "' (expected 'tier N')");
      }
      const int index = std::atoi(inner.c_str() + 5);
      if (index != current_tier + 1) {
        parse_fail(line_number, "tier sections must appear in order; expected [tier " +
                                    std::to_string(current_tier + 1) + "]");
      }
      current_tier = index;
      topology.tiers.emplace_back();
      backing_names.emplace_back("none");
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      parse_fail(line_number, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (current_tier == -1) {
      if (key == "machine") {
        topology.name = value;
      } else if (key == "tiers") {
        declared_tiers = static_cast<std::size_t>(parse_double(value, line_number));
      } else {
        throw Error::corrupt_input(
            "topology/unknown-field",
            "machine file line " + std::to_string(line_number) +
                ": unknown header field '" + key + "'");
      }
      continue;
    }

    MemoryTier& tier = topology.tiers.back();
    if (key == "name") {
      tier.name = value;
    } else if (key == "kind") {
      if (value == "hbm") {
        tier.kind = TierKind::HBM;
      } else if (value == "dram") {
        tier.kind = TierKind::DRAM;
      } else if (value == "nvm") {
        tier.kind = TierKind::NVM;
      } else {
        throw Error::corrupt_input(
            "topology/unknown-kind",
            "machine file line " + std::to_string(line_number) + ": unknown tier kind '" +
                value + "' (hbm/dram/nvm)");
      }
    } else if (key == "controllers") {
      const std::size_t dots = value.find("..");
      if (dots == std::string::npos) {
        parse_fail(line_number, "controllers must be 'begin..end', got '" + value + "'");
      }
      tier.controllers_begin = std::atoi(value.substr(0, dots).c_str());
      tier.controllers_end = std::atoi(value.substr(dots + 2).c_str());
    } else if (key == "capacity_bytes") {
      tier.params.capacity_bytes = parse_bytes(value, line_number);
    } else if (key == "peak_bw_gbs") {
      tier.params.peak_bw_gbs = parse_double(value, line_number);
    } else if (key == "stream_bw_gbs") {
      tier.params.stream_bw_gbs = parse_double(value, line_number);
    } else if (key == "random_bw_gbs") {
      tier.params.random_bw_gbs = parse_double(value, line_number);
    } else if (key == "idle_latency_ns") {
      tier.params.idle_latency_ns = parse_double(value, line_number);
    } else if (key == "backing") {
      backing_names.back() = value;
    } else if (key == "cache_front") {
      if (value != "true" && value != "false") {
        parse_fail(line_number, "cache_front must be true or false, got '" + value + "'");
      }
      tier.cache_front = value == "true";
    } else {
      throw Error::corrupt_input(
          "topology/unknown-field",
          "machine file line " + std::to_string(line_number) + ": unknown tier field '" +
              key + "'");
    }
  }

  if (topology.name.empty()) {
    throw Error::corrupt_input("topology/parse",
                               "machine file declares no 'machine = <name>' header");
  }
  if (declared_tiers != topology.tiers.size()) {
    throw Error::corrupt_input(
        "topology/parse",
        "machine file header declares " + std::to_string(declared_tiers) +
            " tier(s) but " + std::to_string(topology.tiers.size()) + " were defined");
  }
  // Resolve backing references by name; unknown names are CorruptInput so a
  // typo'd machine file cannot silently drop its spill path.
  for (std::size_t i = 0; i < topology.tiers.size(); ++i) {
    const std::string& backing_name = backing_names[i];
    if (backing_name == "none") {
      topology.tiers[i].backing = -1;
      continue;
    }
    const int target = topology.find_tier(backing_name);
    if (target == -1) {
      throw Error::corrupt_input(
          "topology/bad-backing",
          "machine '" + topology.name + "' tier " + std::to_string(i) +
              ": backing tier '" + backing_name + "' is not declared");
    }
    topology.tiers[i].backing = target;
  }

  topology.validate();
  return topology;
}

MemoryTopology MemoryTopology::knl7210() {
  MemoryTopology topology;
  topology.name = "knl7210";
  topology.tiers = {
      // 8 on-package MCDRAM devices (EDC controllers 0..8).
      MemoryTier{.name = "MCDRAM",
                 .kind = TierKind::HBM,
                 .params = params::kHbm,
                 .controllers_begin = 0,
                 .controllers_end = 8,
                 .backing = 1,
                 .cache_front = true},
      // 6 DDR4-2400 channels (controllers 8..14).
      MemoryTier{.name = "DDR4",
                 .kind = TierKind::DRAM,
                 .params = params::kDdr,
                 .controllers_begin = 8,
                 .controllers_end = 14,
                 .backing = -1,
                 .cache_front = false},
  };
  return topology;
}

MemoryTopology MemoryTopology::xeon_max() {
  // Xeon Max 9480 (Sapphire Rapids + HBM), the Aurora-class node: 64 GiB
  // HBM2e on package and 8 DDR5-4800 channels. Envelope follows the Aurora
  // paper's published STREAM/idle-latency measurements; see docs/MACHINES.md
  // for the anchor table.
  MemoryTopology topology;
  topology.name = "xeonmax";
  topology.tiers = {
      MemoryTier{.name = "HBM2e",
                 .kind = TierKind::HBM,
                 .params = params::NodeParams{.capacity_bytes = 64 * GiB,
                                             .peak_bw_gbs = 1640.0,
                                             .stream_bw_gbs = 1140.0,
                                             .random_bw_gbs = 420.0,
                                             .idle_latency_ns = 185.0},
                 .controllers_begin = 0,
                 .controllers_end = 4,
                 .backing = 1,
                 .cache_front = true},
      MemoryTier{.name = "DDR5",
                 .kind = TierKind::DRAM,
                 .params = params::NodeParams{.capacity_bytes = 512 * GiB,
                                             .peak_bw_gbs = 307.0,
                                             .stream_bw_gbs = 220.0,
                                             .random_bw_gbs = 95.0,
                                             .idle_latency_ns = 112.0},
                 .controllers_begin = 4,
                 .controllers_end = 12,
                 .backing = -1,
                 .cache_front = false},
  };
  return topology;
}

MemoryTopology MemoryTopology::knl_nvm() {
  // The paper testbed with a third NVM-class tier behind DDR4, following
  // the NUMA-emulation paper's far-memory envelope (roughly 1/5 of DDR
  // stream bandwidth, ~2.6x its idle latency) — DDR overflow spills there
  // instead of failing.
  MemoryTopology topology = knl7210();
  topology.name = "knl_nvm";
  topology.tiers[1].backing = 2;
  topology.tiers.push_back(
      MemoryTier{.name = "NVM",
                 .kind = TierKind::NVM,
                 .params = params::NodeParams{.capacity_bytes = 512 * GiB,
                                             .peak_bw_gbs = 20.0,
                                             .stream_bw_gbs = 15.0,
                                             .random_bw_gbs = 4.0,
                                             .idle_latency_ns = 340.0},
                 .controllers_begin = 14,
                 .controllers_end = 16,
                 .backing = -1,
                 .cache_front = false});
  return topology;
}

TierPlacement place_waterfall(const MemoryTopology& topology, std::uint64_t bytes,
                              int preferred, bool strict) {
  TierPlacement placement;
  if (preferred < 0 || preferred >= static_cast<int>(topology.tier_count())) {
    placement.error = "placement: preferred tier index " + std::to_string(preferred) +
                      " is out of range";
    return placement;
  }

  std::uint64_t remaining = bytes;
  const std::vector<int> chain = topology.spill_chain(preferred);
  for (const int tier_index : chain) {
    const MemoryTier& tier = topology.tier(static_cast<std::size_t>(tier_index));
    const std::uint64_t taken = std::min(remaining, tier.params.capacity_bytes);
    if (taken > 0) {
      placement.shares.push_back(TierShare{tier_index, taken});
      remaining -= taken;
    }
    if (remaining == 0) break;
    if (strict) {
      placement.error = "membind: tier '" + tier.name + "' cannot hold " +
                        std::to_string(bytes) + " bytes (capacity " +
                        std::to_string(tier.params.capacity_bytes) + ")";
      placement.shares.clear();
      return placement;
    }
  }
  if (remaining > 0) {
    const MemoryTier& head = topology.tier(static_cast<std::size_t>(preferred));
    placement.error = "placement: " + std::to_string(remaining) +
                      " bytes overflow the backing chain from '" + head.name + "'";
    placement.shares.clear();
    return placement;
  }
  placement.ok = true;
  return placement;
}

}  // namespace knl::sim
