// TLB and page-walk model.
//
// The latency rise beyond ~128 MB in the paper's Fig. 3 is a paging effect:
// once the randomly-touched footprint exceeds L2-TLB coverage, every access
// pays a page walk, and once the page-table working set itself falls out of
// cache the walk hits memory.  This module provides both an analytic
// expectation (used by the timing model at paper scale) and an exact LRU TLB
// simulator (used by tests to validate the analytic form).
//
// TlbSim stores its entries in flat slot arrays threaded by an intrusive
// hash index and an intrusive LRU list — O(1) per access with no allocation
// after construction, far cheaper than the node-based list+hash LRU it
// replaces, and an MRU front-check makes page-local streams (sweeps,
// chases) nearly free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/knl_params.hpp"

namespace knl::sim {

struct TlbConfig {
  std::uint64_t page_bytes = params::kPageBytes;
  int entries = params::kTlbEntries;
  double walk_cached_ns = params::kPageWalkCachedNs;
  double walk_memory_ns = params::kPageWalkMemoryNs;
  std::uint64_t walk_thrash_bytes = params::kWalkThrashBytes;

  [[nodiscard]] std::uint64_t coverage_bytes() const {
    return page_bytes * static_cast<std::uint64_t>(entries);
  }
};

/// Analytic expected TLB penalty per access for a uniform-random access
/// stream over `footprint` bytes.
class TlbModel {
 public:
  explicit TlbModel(TlbConfig config = {}) : config_(config) {}

  [[nodiscard]] const TlbConfig& config() const noexcept { return config_; }

  /// Probability a random access misses the TLB under LRU with a uniform
  /// stream: pages beyond coverage cannot be cached, so
  /// P(miss) = max(0, 1 - coverage/footprint).
  [[nodiscard]] double miss_probability(std::uint64_t footprint_bytes) const;

  /// Cost of one page walk for the given footprint: walks over small tables
  /// hit the cache hierarchy; very large footprints push the page-table
  /// working set to memory (smooth blend between the two costs).
  [[nodiscard]] double walk_cost_ns(std::uint64_t footprint_bytes) const;

  /// Expected paging penalty added to each random access.
  [[nodiscard]] double expected_penalty_ns(std::uint64_t footprint_bytes) const;

 private:
  TlbConfig config_;
};

/// Exact LRU TLB used by tests to validate TlbModel::miss_probability.
///
/// Layout: a flat intrusive structure over fixed slot arrays — an
/// open-hashed page index (bucket chains threaded through bucket_next_)
/// plus a doubly-linked LRU order threaded through lru_prev_/lru_next_.
/// Every operation is O(1) with no allocation after construction, which is
/// what the batched replay hot loop needs.
class TlbSim {
 public:
  explicit TlbSim(TlbConfig config = {});

  /// Translate one address; returns true on TLB hit.
  bool access(std::uint64_t addr) {
    ++accesses_;
    const std::uint64_t page = page_pow2_ ? (addr >> page_shift_) : (addr / config_.page_bytes);
    // MRU front-check: page-local streams hit here without probing.
    if (head_ >= 0 && pages_[static_cast<std::size_t>(head_)] == page) return true;
    return access_slow(page);
  }

  /// Batched translate: hit_out[i] = 1 when addrs[i] hit. Bit-identical to
  /// calling access() per address, but the page-number extraction is staged
  /// through a SoA scratch array filled by the SIMD dispatch (sim/simd.hpp),
  /// so the stateful LRU walk runs over a contiguous page stream.
  void access_block(const std::uint64_t* addrs, std::size_t n, std::uint8_t* hit_out);

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }

 private:
  [[nodiscard]] std::size_t bucket_of(std::uint64_t page) const noexcept {
    // Fibonacci multiply-shift: sequential pages land in distinct buckets.
    return static_cast<std::size_t>((page * 0x9E3779B97F4A7C15ull) >> bucket_shift_);
  }
  bool access_slow(std::uint64_t page);
  void move_to_front(std::int32_t slot);

  TlbConfig config_;
  bool page_pow2_ = false;
  unsigned page_shift_ = 0;
  unsigned bucket_shift_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::int32_t head_ = -1;    // most recently used slot
  std::int32_t tail_ = -1;    // least recently used slot
  std::int32_t filled_ = 0;   // slots in use (fill before evicting)
  std::vector<std::uint64_t> pages_;
  /// SoA page-number scratch for access_block, lazily allocated on the
  /// thread that first replays a block (first-touch NUMA locality under the
  /// sharded replay).
  std::vector<std::uint64_t> soa_pages_;
  std::vector<std::int32_t> lru_prev_;
  std::vector<std::int32_t> lru_next_;
  std::vector<std::int32_t> bucket_head_;
  std::vector<std::int32_t> bucket_next_;
};

}  // namespace knl::sim
