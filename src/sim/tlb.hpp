// TLB and page-walk model.
//
// The latency rise beyond ~128 MB in the paper's Fig. 3 is a paging effect:
// once the randomly-touched footprint exceeds L2-TLB coverage, every access
// pays a page walk, and once the page-table working set itself falls out of
// cache the walk hits memory.  This module provides both an analytic
// expectation (used by the timing model at paper scale) and an exact LRU TLB
// simulator (used by tests to validate the analytic form).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/knl_params.hpp"

namespace knl::sim {

struct TlbConfig {
  std::uint64_t page_bytes = params::kPageBytes;
  int entries = params::kTlbEntries;
  double walk_cached_ns = params::kPageWalkCachedNs;
  double walk_memory_ns = params::kPageWalkMemoryNs;
  std::uint64_t walk_thrash_bytes = params::kWalkThrashBytes;

  [[nodiscard]] std::uint64_t coverage_bytes() const {
    return page_bytes * static_cast<std::uint64_t>(entries);
  }
};

/// Analytic expected TLB penalty per access for a uniform-random access
/// stream over `footprint` bytes.
class TlbModel {
 public:
  explicit TlbModel(TlbConfig config = {}) : config_(config) {}

  [[nodiscard]] const TlbConfig& config() const noexcept { return config_; }

  /// Probability a random access misses the TLB under LRU with a uniform
  /// stream: pages beyond coverage cannot be cached, so
  /// P(miss) = max(0, 1 - coverage/footprint).
  [[nodiscard]] double miss_probability(std::uint64_t footprint_bytes) const;

  /// Cost of one page walk for the given footprint: walks over small tables
  /// hit the cache hierarchy; very large footprints push the page-table
  /// working set to memory (smooth blend between the two costs).
  [[nodiscard]] double walk_cost_ns(std::uint64_t footprint_bytes) const;

  /// Expected paging penalty added to each random access.
  [[nodiscard]] double expected_penalty_ns(std::uint64_t footprint_bytes) const;

 private:
  TlbConfig config_;
};

/// Exact LRU TLB used by tests to validate TlbModel::miss_probability.
class TlbSim {
 public:
  explicit TlbSim(TlbConfig config = {}) : config_(config) {}

  /// Translate one address; returns true on TLB hit.
  bool access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }

 private:
  TlbConfig config_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

}  // namespace knl::sim
