#include "sim/parallel_replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl::sim {

ParallelReplay::ParallelReplay() : ParallelReplay(ParallelReplayConfig{}) {}

ParallelReplay::ParallelReplay(ParallelReplayConfig config)
    : config_(config), mesh_(config.mesh) {
  if (config_.cores < 1) throw std::invalid_argument("ParallelReplay: need >= 1 core");
  if (config_.mshrs_per_core < 1) {
    throw std::invalid_argument("ParallelReplay: need >= 1 MSHR per core");
  }
  if (config_.issue_ns <= 0.0) {
    throw std::invalid_argument("ParallelReplay: issue_ns must be positive");
  }
  reset();
  // Serialize line transfers at the (scaled) bandwidth cap: one 64 B line
  // every line/bandwidth seconds.
  line_service_ns_ =
      static_cast<double>(params::kLineBytes) / bandwidth_cap_gbs();  // ns (GB/s==B/ns)
}

double ParallelReplay::bandwidth_cap_gbs() const {
  const double full = config_.node.stream_bw_gbs;
  if (!config_.scale_cap_to_cores) return full;
  return full * static_cast<double>(config_.cores) /
         static_cast<double>(params::kCores);
}

void ParallelReplay::reset() {
  cores_.clear();
  cores_.reserve(static_cast<std::size_t>(config_.cores));
  for (int c = 0; c < config_.cores; ++c) {
    Core core;
    core.l1 = std::make_unique<CacheSim>(config_.l1);
    core.l2 = std::make_unique<CacheSim>(config_.l2);
    core.tlb = std::make_unique<TlbSim>(config_.tlb);
    core.mshr_free_at.assign(static_cast<std::size_t>(config_.mshrs_per_core), 0.0);
    cores_.push_back(std::move(core));
  }
  memory_free_at_ = 0.0;
}

ParallelReplayStats ParallelReplay::replay(
    const std::vector<std::vector<std::uint64_t>>& streams) {
  if (streams.size() != cores_.size()) {
    throw std::invalid_argument("ParallelReplay: one stream per core required");
  }
  ParallelReplayStats stats;
  double last_done = 0.0;

  // Round-robin lock-step: each round, every core issues its next access.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      Core& core = cores_[c];
      const auto& stream = streams[c];
      if (core.position >= stream.size()) continue;
      progressed = true;
      const std::uint64_t addr = stream[core.position++];
      ++stats.accesses;

      core.issue_cursor += config_.issue_ns;
      double start = core.issue_cursor;
      if (!core.tlb->access(addr)) start += config_.tlb.walk_cached_ns;

      if (core.l1->access(addr)) {
        last_done = std::max(last_done, start + config_.l1_latency_ns);
        continue;
      }
      auto earliest =
          std::min_element(core.mshr_free_at.begin(), core.mshr_free_at.end());
      const double issue = std::max(start, *earliest);
      if (core.l2->access(addr)) {
        last_done = std::max(last_done, issue + config_.l2_latency_ns);
        continue;
      }
      ++stats.memory_accesses;
      // Contend for the shared bandwidth budget (token bucket), then pay
      // the memory latency.
      const double grant = std::max(issue, memory_free_at_);
      if (memory_free_at_ > issue) stats.capped_seconds += (grant - issue) * 1e-9;
      memory_free_at_ = grant + line_service_ns_;
      const double done = grant + config_.l2_latency_ns + mesh_.directory_latency_ns() +
                          config_.node.idle_latency_ns;
      *earliest = done;
      last_done = std::max(last_done, done);
    }
  }
  stats.seconds = last_done * 1e-9;
  return stats;
}

}  // namespace knl::sim
