#include "sim/parallel_replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/epoch_queue.hpp"
#include "core/fault/fault_injection.hpp"
#include "sim/replay_telemetry.hpp"

namespace knl::sim {

void ParallelReplay::ShardArena::ensure(std::size_t epoch_accesses) {
  if (epoch_capacity_ >= epoch_accesses) return;
  constexpr std::size_t kAlign = 64;
  const auto rounded = [](std::size_t bytes) {
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  };
  const std::size_t cls_bytes = rounded(epoch_accesses);
  const std::size_t flag_bytes = rounded(kClassifyChunk);
  const std::size_t addr_bytes = rounded(kClassifyChunk * sizeof(std::uint64_t));
  const std::size_t idx_bytes = rounded(kClassifyChunk * sizeof(std::uint32_t));
  const std::size_t total = 2 * cls_bytes + 3 * flag_bytes + addr_bytes + idx_bytes;
  auto* slab = static_cast<std::byte*>(std::aligned_alloc(kAlign, total));
  if (slab == nullptr) throw std::bad_alloc();
  // Zeroing here is the first touch: under a first-touch NUMA policy the
  // slab's pages bind to the node of the worker that replays this shard.
  std::memset(slab, 0, total);
  slab_.reset(slab);
  std::byte* p = slab;
  const auto carve = [&p](std::size_t bytes) {
    std::byte* segment = p;
    p += bytes;
    return segment;
  };
  cls_[0] = reinterpret_cast<std::uint8_t*>(carve(cls_bytes));
  cls_[1] = reinterpret_cast<std::uint8_t*>(carve(cls_bytes));
  tlb_hit_ = reinterpret_cast<std::uint8_t*>(carve(flag_bytes));
  l1_hit_ = reinterpret_cast<std::uint8_t*>(carve(flag_bytes));
  l2_hit_ = reinterpret_cast<std::uint8_t*>(carve(flag_bytes));
  miss_addrs_ = reinterpret_cast<std::uint64_t*>(carve(addr_bytes));
  miss_idx_ = reinterpret_cast<std::uint32_t*>(carve(idx_bytes));
  epoch_capacity_ = epoch_accesses;
}

ParallelReplay::ParallelReplay() : ParallelReplay(ParallelReplayConfig{}) {}

ParallelReplay::ParallelReplay(ParallelReplayConfig config)
    : config_(config), mesh_(config.mesh) {
  if (config_.cores < 1) throw std::invalid_argument("ParallelReplay: need >= 1 core");
  if (config_.mshrs_per_core < 1) {
    throw std::invalid_argument("ParallelReplay: need >= 1 MSHR per core");
  }
  if (config_.issue_ns <= 0.0) {
    throw std::invalid_argument("ParallelReplay: issue_ns must be positive");
  }
  if (config_.epoch_accesses < 1) {
    throw std::invalid_argument("ParallelReplay: epoch_accesses must be >= 1");
  }
  reset();
  // Serialize line transfers at the (scaled) bandwidth cap: one 64 B line
  // every line/bandwidth seconds.
  line_service_ns_ =
      static_cast<double>(params::kLineBytes) / bandwidth_cap_gbs();  // ns (GB/s==B/ns)
}

double ParallelReplay::bandwidth_cap_gbs() const {
  const double full = config_.node.stream_bw_gbs;
  if (!config_.scale_cap_to_cores) return full;
  return full * static_cast<double>(config_.cores) /
         static_cast<double>(params::kCores);
}

void ParallelReplay::reset() {
  cores_.clear();
  cores_.reserve(static_cast<std::size_t>(config_.cores));
  for (int c = 0; c < config_.cores; ++c) {
    Core core{CacheSim(config_.l1), CacheSim(config_.l2), TlbSim(config_.tlb), {}, 0.0,
              0, {}};
    core.mshr_free_at.assign(static_cast<std::size_t>(config_.mshrs_per_core), 0.0);
    cores_.push_back(std::move(core));
  }
  memory_free_at_ = 0.0;
}

ReplayCounters ParallelReplay::classify(Core& core,
                                        const std::vector<std::uint64_t>& stream,
                                        std::size_t begin, std::size_t end,
                                        std::uint8_t* cls) {
  ReplayCounters counters;
  std::uint8_t* tlb_hit = core.arena.tlb_hit();
  std::uint8_t* l1_hit = core.arena.l1_hit();
  std::uint8_t* l2_hit = core.arena.l2_hit();
  std::uint64_t* miss_addrs = core.arena.miss_addrs();
  std::uint32_t* miss_idx = core.arena.miss_idx();

  for (std::size_t i = begin; i < end; i += kClassifyChunk) {
    const std::size_t n = std::min(kClassifyChunk, end - i);
    const std::uint64_t* addrs = stream.data() + i;
    std::uint8_t* out = cls + (i - begin);

    // Stage 1+2: whole-chunk TLB and L1 probes through the SoA block paths.
    core.tlb.access_block(addrs, n, tlb_hit);
    core.l1.access_block_flags(addrs, n, l1_hit);

    // Stage 3: compact the L1 misses (stream order preserved) and probe L2
    // over the compacted subsequence — the same L2 access order as the
    // per-address reference, so L2 state and stats stay bit-identical.
    std::size_t misses = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (l1_hit[j] == 0) {
        miss_addrs[misses] = addrs[j];
        miss_idx[misses] = static_cast<std::uint32_t>(j);
        ++misses;
      }
    }
    if (misses != 0) core.l2.access_block_flags(miss_addrs, misses, l2_hit);

    // Fuse the stage flags into per-address classification bytes.
    std::uint64_t tlb_misses = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const bool missed_tlb = tlb_hit[j] == 0;
      out[j] = missed_tlb ? kClassTlbMiss : kClassL1;
      tlb_misses += missed_tlb ? 1u : 0u;
    }
    std::uint64_t l2_hits = 0;
    for (std::size_t j = 0; j < misses; ++j) {
      const std::uint8_t kind = l2_hit[j] != 0 ? kClassL2 : kClassMemory;
      out[miss_idx[j]] = static_cast<std::uint8_t>(out[miss_idx[j]] | kind);
      l2_hits += l2_hit[j] != 0 ? 1u : 0u;
    }
    counters.tlb_misses += tlb_misses;
    counters.l1_hits += n - misses;
    counters.l2_hits += l2_hits;
    counters.memory_accesses += misses - l2_hits;
  }
  counters.accesses = end - begin;
  return counters;
}

ParallelReplayStats ParallelReplay::replay(
    const std::vector<std::vector<std::uint64_t>>& streams) {
  if (streams.size() != cores_.size()) {
    throw std::invalid_argument("ParallelReplay: one stream per core required");
  }
  ParallelReplayStats stats;
  double last_done = 0.0;

  // Round alignment identical to the lock-step reference: in global round r
  // (counted from this call), core c consumes streams[c][pos0[c] + r] if
  // that index exists. Epoch e covers rounds [e*epoch_len, (e+1)*epoch_len).
  const std::size_t num_cores = cores_.size();
  std::vector<std::size_t> pos0(num_cores), remaining(num_cores);
  std::size_t max_remaining = 0;
  for (std::size_t c = 0; c < num_cores; ++c) {
    pos0[c] = cores_[c].position;
    remaining[c] = streams[c].size() > pos0[c] ? streams[c].size() - pos0[c] : 0;
    max_remaining = std::max(max_remaining, remaining[c]);
  }
  const std::size_t epoch_len = config_.epoch_accesses;
  const std::size_t num_epochs =
      max_remaining == 0 ? 0 : (max_remaining + epoch_len - 1) / epoch_len;

  const bool parallel = num_cores > 1 && config_.workers != 1;
  if (parallel && !pool_) {
    pool_ = std::make_unique<core::ThreadPool>(config_.workers);
  }

  // Epoch pipeline plumbing. The queue is bounded at the core count: by the
  // time wave e+1's shards can push, every wave-e message has been popped,
  // so producers never block on a full ring.
  core::BoundedMpscQueue<EpochResult> queue(num_cores);
  std::vector<std::future<void>> pending;
  pending.reserve(num_cores);
  std::vector<ReplayCounters> wave_counters(num_cores);

  const auto slice_end_of = [&](std::size_t e, std::size_t c) {
    return std::min(remaining[c], std::min(max_remaining, (e + 1) * epoch_len));
  };

  // Launch wave e: one classification task per core with work in epoch e,
  // writing into parity half e&1 of the core's double-buffered cls bytes.
  const auto submit_wave = [&](std::size_t e) {
    const std::size_t epoch_start = e * epoch_len;
    for (std::size_t c = 0; c < num_cores; ++c) {
      const std::size_t slice_end = slice_end_of(e, c);
      if (slice_end <= epoch_start) continue;
      Core& core = cores_[c];
      const std::size_t begin = pos0[c] + epoch_start;
      const std::size_t end = pos0[c] + slice_end;
      const auto task = [this, e, c, &core, &stream = streams[c], begin, end,
                         &queue] {
        // ensure() runs on the shard's worker so the slab is first-touched
        // (and thus NUMA-placed) where the shard's replay runs.
        core.arena.ensure(config_.epoch_accesses);
        EpochResult result{static_cast<std::uint32_t>(e), static_cast<std::uint32_t>(c),
                           classify(core, stream, begin, end, core.arena.cls(e))};
        queue.push(std::move(result));
      };
      if (parallel) {
        pending.push_back(pool_->submit(task));
      } else {
        task();
      }
    }
  };

  // Reap finished pool tasks: an exception thrown at the thread-pool
  // dispatch fault site lands in the future (the task body never ran and
  // never pushed), so without this the collect loop would wait forever.
  const auto reap_ready = [&] {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        std::future<void> done = std::move(pending[i]);
        pending[i] = std::move(pending.back());
        pending.pop_back();
        done.get();  // rethrows a dispatch-site fault
      } else {
        ++i;
      }
    }
  };

  // Gather wave e's per-shard counters from the queue. The acquire pop is
  // the happens-before edge that makes the shard's cls bytes (and cache
  // stats) visible to the reconciling thread.
  const auto collect_wave = [&](std::size_t e) {
    std::fill(wave_counters.begin(), wave_counters.end(), ReplayCounters{});
    const std::size_t epoch_start = e * epoch_len;
    std::size_t expected = 0;
    for (std::size_t c = 0; c < num_cores; ++c) {
      if (slice_end_of(e, c) > epoch_start) ++expected;
    }
    std::size_t got = 0;
    while (got < expected) {
      EpochResult result;
      if (queue.try_pop(result)) {
        wave_counters[result.core] = result.counters;
        ++got;
        continue;
      }
      reap_ready();
      std::this_thread::yield();
    }
  };

  // Error path: in-flight tasks reference this frame's locals, so before
  // rethrowing the primary failure, wait them all out (swallowing secondary
  // outcomes) and drain any queued messages.
  const auto quiesce = [&]() noexcept {
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
    pending.clear();
    EpochResult sink;
    while (queue.try_pop(sink)) {
    }
  };

  try {
    if (num_epochs > 0) submit_wave(0);
    for (std::size_t e = 0; e < num_epochs; ++e) {
      // Pipeline step: finish collecting wave e, immediately launch wave
      // e+1 into the other parity half, then reconcile wave e's timing
      // while the pool classifies ahead.
      collect_wave(e);
      if (e + 1 < num_epochs) submit_wave(e + 1);

      // Fault-injection site at the epoch boundary (keyed by epoch index —
      // deterministic for any worker count). It fires while wave e+1 is
      // already classifying, so an injected fault aborts the replay with an
      // epoch in flight; call reset() before reusing this instance.
      fault::maybe_inject(fault::kSiteReplayEpoch, e);

      // Merge in core order — deterministic by construction.
      for (std::size_t c = 0; c < num_cores; ++c) stats.merge(wave_counters[c]);

      // Phase B: serial reconciliation of the shared bandwidth budget, in
      // the exact round order (and with the exact FP operations) of the
      // lock-step reference — bit-identical for every worker count and
      // epoch size. Reads parity half e&1; wave e+1 writes the other half.
      const std::size_t epoch_start = e * epoch_len;
      const std::size_t epoch_end = std::min(max_remaining, epoch_start + epoch_len);
      for (std::size_t r = epoch_start; r < epoch_end; ++r) {
        for (std::size_t c = 0; c < num_cores; ++c) {
          if (r >= remaining[c]) continue;
          Core& core = cores_[c];
          const std::uint8_t cls = core.arena.cls(e)[r - epoch_start];

          core.issue_cursor += config_.issue_ns;
          double start = core.issue_cursor;
          if (cls & kClassTlbMiss) start += config_.tlb.walk_cached_ns;

          if ((cls & kClassKindMask) == kClassL1) {
            last_done = std::max(last_done, start + config_.l1_latency_ns);
            continue;
          }
          auto earliest =
              std::min_element(core.mshr_free_at.begin(), core.mshr_free_at.end());
          const double issue = std::max(start, *earliest);
          if ((cls & kClassKindMask) == kClassL2) {
            last_done = std::max(last_done, issue + config_.l2_latency_ns);
            continue;
          }
          // Contend for the shared bandwidth budget (token bucket), then pay
          // the memory latency.
          const double grant = std::max(issue, memory_free_at_);
          if (memory_free_at_ > issue) stats.capped_seconds += (grant - issue) * 1e-9;
          memory_free_at_ = grant + line_service_ns_;
          const double done = grant + config_.l2_latency_ns +
                              mesh_.directory_latency_ns() +
                              config_.node.idle_latency_ns;
          *earliest = done;
          last_done = std::max(last_done, done);
        }
      }
    }
    // Every wave has been collected; settle the pool wrappers that may still
    // be finishing (and surface a trailing dispatch-site fault, if any).
    for (auto& f : pending) f.get();
    pending.clear();
  } catch (...) {
    quiesce();
    throw;
  }

  for (std::size_t c = 0; c < num_cores; ++c) {
    cores_[c].position = pos0[c] + std::min(remaining[c], max_remaining);
  }
  ReplayTelemetry::instance().record_replay(
      num_epochs, parallel && num_epochs > 1 ? num_epochs - 1 : 0);
  stats.seconds = last_done * 1e-9;
  return stats;
}

ParallelReplayStats ParallelReplay::replay_reference(
    const std::vector<std::vector<std::uint64_t>>& streams) {
  if (streams.size() != cores_.size()) {
    throw std::invalid_argument("ParallelReplay: one stream per core required");
  }
  ParallelReplayStats stats;
  double last_done = 0.0;

  // Round-robin lock-step: each round, every core issues its next access.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      Core& core = cores_[c];
      const auto& stream = streams[c];
      if (core.position >= stream.size()) continue;
      progressed = true;
      const std::uint64_t addr = stream[core.position++];
      ++stats.accesses;

      core.issue_cursor += config_.issue_ns;
      double start = core.issue_cursor;
      if (!core.tlb.access(addr)) {
        ++stats.tlb_misses;
        start += config_.tlb.walk_cached_ns;
      }

      if (core.l1.access(addr)) {
        ++stats.l1_hits;
        last_done = std::max(last_done, start + config_.l1_latency_ns);
        continue;
      }
      auto earliest =
          std::min_element(core.mshr_free_at.begin(), core.mshr_free_at.end());
      const double issue = std::max(start, *earliest);
      if (core.l2.access(addr)) {
        ++stats.l2_hits;
        last_done = std::max(last_done, issue + config_.l2_latency_ns);
        continue;
      }
      ++stats.memory_accesses;
      // Contend for the shared bandwidth budget (token bucket), then pay
      // the memory latency.
      const double grant = std::max(issue, memory_free_at_);
      if (memory_free_at_ > issue) stats.capped_seconds += (grant - issue) * 1e-9;
      memory_free_at_ = grant + line_service_ns_;
      const double done = grant + config_.l2_latency_ns + mesh_.directory_latency_ns() +
                          config_.node.idle_latency_ns;
      *earliest = done;
      last_done = std::max(last_done, done);
    }
  }
  stats.seconds = last_done * 1e-9;
  return stats;
}

}  // namespace knl::sim
