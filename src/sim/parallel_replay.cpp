#include "sim/parallel_replay.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>

#include "core/fault/fault_injection.hpp"

namespace knl::sim {

ParallelReplay::ParallelReplay() : ParallelReplay(ParallelReplayConfig{}) {}

ParallelReplay::ParallelReplay(ParallelReplayConfig config)
    : config_(config), mesh_(config.mesh) {
  if (config_.cores < 1) throw std::invalid_argument("ParallelReplay: need >= 1 core");
  if (config_.mshrs_per_core < 1) {
    throw std::invalid_argument("ParallelReplay: need >= 1 MSHR per core");
  }
  if (config_.issue_ns <= 0.0) {
    throw std::invalid_argument("ParallelReplay: issue_ns must be positive");
  }
  if (config_.epoch_accesses < 1) {
    throw std::invalid_argument("ParallelReplay: epoch_accesses must be >= 1");
  }
  reset();
  // Serialize line transfers at the (scaled) bandwidth cap: one 64 B line
  // every line/bandwidth seconds.
  line_service_ns_ =
      static_cast<double>(params::kLineBytes) / bandwidth_cap_gbs();  // ns (GB/s==B/ns)
}

double ParallelReplay::bandwidth_cap_gbs() const {
  const double full = config_.node.stream_bw_gbs;
  if (!config_.scale_cap_to_cores) return full;
  return full * static_cast<double>(config_.cores) /
         static_cast<double>(params::kCores);
}

void ParallelReplay::reset() {
  cores_.clear();
  cores_.reserve(static_cast<std::size_t>(config_.cores));
  for (int c = 0; c < config_.cores; ++c) {
    Core core{CacheSim(config_.l1), CacheSim(config_.l2), TlbSim(config_.tlb), {}, 0.0,
              0, {}};
    core.mshr_free_at.assign(static_cast<std::size_t>(config_.mshrs_per_core), 0.0);
    cores_.push_back(std::move(core));
  }
  memory_free_at_ = 0.0;
}

ReplayCounters ParallelReplay::classify(Core& core,
                                        const std::vector<std::uint64_t>& stream,
                                        std::size_t begin, std::size_t end) {
  ReplayCounters counters;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t addr = stream[i];
    std::uint8_t cls = kClassL1;
    if (!core.tlb.access(addr)) {
      cls |= kClassTlbMiss;
      ++counters.tlb_misses;
    }
    if (core.l1.access(addr)) {
      ++counters.l1_hits;
    } else if (core.l2.access(addr)) {
      cls |= kClassL2;
      ++counters.l2_hits;
    } else {
      cls |= kClassMemory;
      ++counters.memory_accesses;
    }
    core.cls[i - begin] = cls;
  }
  counters.accesses = end - begin;
  return counters;
}

ParallelReplayStats ParallelReplay::replay(
    const std::vector<std::vector<std::uint64_t>>& streams) {
  if (streams.size() != cores_.size()) {
    throw std::invalid_argument("ParallelReplay: one stream per core required");
  }
  ParallelReplayStats stats;
  double last_done = 0.0;

  // Round alignment identical to the lock-step reference: in global round r
  // (counted from this call), core c consumes streams[c][pos0[c] + r] if
  // that index exists. Rounds are processed in epochs of epoch_accesses.
  const std::size_t num_cores = cores_.size();
  std::vector<std::size_t> pos0(num_cores), remaining(num_cores);
  std::size_t max_remaining = 0;
  for (std::size_t c = 0; c < num_cores; ++c) {
    pos0[c] = cores_[c].position;
    remaining[c] = streams[c].size() > pos0[c] ? streams[c].size() - pos0[c] : 0;
    max_remaining = std::max(max_remaining, remaining[c]);
  }

  const bool parallel = num_cores > 1 && config_.workers != 1;
  if (parallel && !pool_) {
    pool_ = std::make_unique<core::ThreadPool>(config_.workers);
  }

  std::vector<ReplayCounters> shard_counters(num_cores);
  std::vector<std::future<ReplayCounters>> futures;
  futures.reserve(num_cores);

  for (std::size_t epoch_start = 0; epoch_start < max_remaining;
       epoch_start += config_.epoch_accesses) {
    // Fault-injection site at the epoch boundary (keyed by epoch index —
    // deterministic for any worker count). An injected fault aborts the
    // replay mid-epoch; call reset() before reusing this instance.
    fault::maybe_inject(fault::kSiteReplayEpoch,
                        epoch_start / config_.epoch_accesses);
    const std::size_t epoch_end =
        std::min(max_remaining, epoch_start + config_.epoch_accesses);

    // Phase A: classify each core's epoch slice through its private
    // hierarchy. Cache/TLB outcomes depend only on the core's own address
    // order, never on timing, so the shards are independent.
    futures.clear();
    for (std::size_t c = 0; c < num_cores; ++c) {
      Core& core = cores_[c];
      const std::size_t slice_end = std::min(remaining[c], epoch_end);
      if (slice_end <= epoch_start) {
        shard_counters[c] = ReplayCounters{};
        continue;
      }
      const std::size_t begin = pos0[c] + epoch_start;
      const std::size_t end = pos0[c] + slice_end;
      core.cls.resize(end - begin);
      if (parallel) {
        futures.push_back(pool_->submit([this, &core, &stream = streams[c], begin, end] {
          return classify(core, stream, begin, end);
        }));
      } else {
        shard_counters[c] = classify(core, streams[c], begin, end);
      }
    }
    if (parallel) {
      std::size_t f = 0;
      for (std::size_t c = 0; c < num_cores; ++c) {
        if (std::min(remaining[c], epoch_end) > epoch_start) {
          shard_counters[c] = futures[f++].get();
        }
      }
    }
    // Merge in core order — deterministic by construction.
    for (std::size_t c = 0; c < num_cores; ++c) stats.merge(shard_counters[c]);

    // Phase B: serial reconciliation of the shared bandwidth budget, in the
    // exact round order (and with the exact FP operations) of the lock-step
    // reference — bit-identical for every worker count and epoch size.
    for (std::size_t r = epoch_start; r < epoch_end; ++r) {
      for (std::size_t c = 0; c < num_cores; ++c) {
        if (r >= remaining[c]) continue;
        Core& core = cores_[c];
        const std::uint8_t cls = core.cls[r - epoch_start];

        core.issue_cursor += config_.issue_ns;
        double start = core.issue_cursor;
        if (cls & kClassTlbMiss) start += config_.tlb.walk_cached_ns;

        if ((cls & kClassKindMask) == kClassL1) {
          last_done = std::max(last_done, start + config_.l1_latency_ns);
          continue;
        }
        auto earliest =
            std::min_element(core.mshr_free_at.begin(), core.mshr_free_at.end());
        const double issue = std::max(start, *earliest);
        if ((cls & kClassKindMask) == kClassL2) {
          last_done = std::max(last_done, issue + config_.l2_latency_ns);
          continue;
        }
        // Contend for the shared bandwidth budget (token bucket), then pay
        // the memory latency.
        const double grant = std::max(issue, memory_free_at_);
        if (memory_free_at_ > issue) stats.capped_seconds += (grant - issue) * 1e-9;
        memory_free_at_ = grant + line_service_ns_;
        const double done = grant + config_.l2_latency_ns +
                            mesh_.directory_latency_ns() +
                            config_.node.idle_latency_ns;
        *earliest = done;
        last_done = std::max(last_done, done);
      }
    }
  }

  for (std::size_t c = 0; c < num_cores; ++c) {
    cores_[c].position = pos0[c] + std::min(remaining[c], max_remaining);
  }
  stats.seconds = last_done * 1e-9;
  return stats;
}

ParallelReplayStats ParallelReplay::replay_reference(
    const std::vector<std::vector<std::uint64_t>>& streams) {
  if (streams.size() != cores_.size()) {
    throw std::invalid_argument("ParallelReplay: one stream per core required");
  }
  ParallelReplayStats stats;
  double last_done = 0.0;

  // Round-robin lock-step: each round, every core issues its next access.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      Core& core = cores_[c];
      const auto& stream = streams[c];
      if (core.position >= stream.size()) continue;
      progressed = true;
      const std::uint64_t addr = stream[core.position++];
      ++stats.accesses;

      core.issue_cursor += config_.issue_ns;
      double start = core.issue_cursor;
      if (!core.tlb.access(addr)) {
        ++stats.tlb_misses;
        start += config_.tlb.walk_cached_ns;
      }

      if (core.l1.access(addr)) {
        ++stats.l1_hits;
        last_done = std::max(last_done, start + config_.l1_latency_ns);
        continue;
      }
      auto earliest =
          std::min_element(core.mshr_free_at.begin(), core.mshr_free_at.end());
      const double issue = std::max(start, *earliest);
      if (core.l2.access(addr)) {
        ++stats.l2_hits;
        last_done = std::max(last_done, issue + config_.l2_latency_ns);
        continue;
      }
      ++stats.memory_accesses;
      // Contend for the shared bandwidth budget (token bucket), then pay
      // the memory latency.
      const double grant = std::max(issue, memory_free_at_);
      if (memory_free_at_ > issue) stats.capped_seconds += (grant - issue) * 1e-9;
      memory_free_at_ = grant + line_service_ns_;
      const double done = grant + config_.l2_latency_ns + mesh_.directory_latency_ns() +
                          config_.node.idle_latency_ns;
      *earliest = done;
      last_done = std::max(last_done, done);
    }
  }
  stats.seconds = last_done * 1e-9;
  return stats;
}

}  // namespace knl::sim
