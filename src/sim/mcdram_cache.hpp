// MCDRAM in cache mode: a direct-mapped, memory-side cache in front of DDR
// (paper §II "Cache" and the Fig. 2 bandwidth cliff).
//
// Two cooperating models:
//  - McdramCacheModel: closed-form steady-state hit rates and the blended
//    bandwidth/latency of the cached path. Used at paper scale.
//  - McdramCacheSim:   exact (set-sampled) direct-mapped simulation driven
//    by replayed address streams. Used by tests to validate the closed form
//    and by the trace substrate for small-footprint studies.
//
// Mechanism being reproduced: the cache is direct-mapped on *physical*
// address, so (a) repeated sweeps larger than capacity get no reuse, and
// (b) even below capacity, physical-page scatter creates conflicts whose
// frequency grows steeply as occupancy approaches 1 — this is what drags
// cache-mode STREAM from ~330 GB/s down through 260 GB/s (8 GB), 125 GB/s
// (11.4 GB) and below DRAM past ~24 GB in the paper.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/knl_params.hpp"

namespace knl::sim {

struct McdramCacheConfig {
  std::uint64_t capacity_bytes = params::kHbm.capacity_bytes;
  std::uint64_t line_bytes = params::kLineBytes;
  double tag_latency_ns = params::kMcdramTagLatencyNs;
  double miss_overhead_s_per_gb = params::kMcdramMissOverheadSPerGB;
  double sweep_knee = params::kSweepKnee;
  double sweep_sharpness = params::kSweepSharpness;
};

class McdramCacheModel {
 public:
  explicit McdramCacheModel(McdramCacheConfig config = {});

  [[nodiscard]] const McdramCacheConfig& config() const noexcept { return config_; }

  /// Steady-state hit rate of repeated sequential sweeps over `footprint`
  /// bytes: h(rho) = 1 / (1 + (rho/knee)^sharpness), rho = footprint/capacity.
  /// Calibrated to the paper's cache-mode STREAM anchors.
  [[nodiscard]] double sweep_hit_rate(std::uint64_t footprint_bytes) const;

  /// Steady-state hit rate of uniform-random line accesses over `footprint`
  /// bytes: residency capacity/footprint shaved by direct-mapped conflicts.
  [[nodiscard]] double random_hit_rate(std::uint64_t footprint_bytes) const;

  /// Effective streaming bandwidth of the cached path given the hit rate and
  /// the raw attainable bandwidths of the two devices:
  ///   1 / (h/bw_hbm + (1-h) * (1/bw_ddr + miss_overhead)).
  [[nodiscard]] double effective_bandwidth_gbs(double hit_rate, double hbm_bw_gbs,
                                               double ddr_bw_gbs) const;

  /// Effective access latency of the cached path: every access pays the
  /// MCDRAM tag check; misses then add the DDR trip.
  [[nodiscard]] double effective_latency_ns(double hit_rate, double hbm_latency_ns,
                                            double ddr_latency_ns) const;

 private:
  McdramCacheConfig config_;
};

/// Exact direct-mapped simulation (sampled sets), for cross-validation.
class McdramCacheSim {
 public:
  /// `sample_every` > 1 simulates 1/sample_every of the sets — unbiased for
  /// sweep and uniform-random streams.
  explicit McdramCacheSim(McdramCacheConfig config = {}, std::uint64_t sample_every = 64);

  /// Access a physical byte address; true on hit.
  bool access(std::uint64_t paddr) { return sim_.access(paddr); }
  /// Batched replay of a whole address block (the sharded-replay hot path).
  BlockStats access_block(std::span<const std::uint64_t> paddrs) {
    return sim_.access_block(paddrs);
  }
  std::uint64_t access_range(std::uint64_t paddr, std::uint64_t bytes) {
    return sim_.access_range(paddr, bytes);
  }

  [[nodiscard]] double hit_rate() const { return sim_.stats().hit_rate(); }
  [[nodiscard]] const CacheStats& stats() const { return sim_.stats(); }
  void reset_stats() { sim_.reset_stats(); }
  void flush() { sim_.flush(); }

 private:
  CacheSim sim_;
};

}  // namespace knl::sim
