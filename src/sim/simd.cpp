#include "sim/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#define KNL_SIMD_X86 1
#include <immintrin.h>
#else
#define KNL_SIMD_X86 0
#endif

namespace knl::sim::simd {

namespace {

// -1 = unresolved; otherwise a Level. Resolution is idempotent, so a benign
// race on first use at worst resolves twice to the same value.
std::atomic<int> g_level{-1};

Level resolve_from_env(Level best) {
  const char* env = std::getenv("KNL_SIMD");
  if (env == nullptr) return best;
  const std::string_view want(env);
  Level requested = best;
  if (want == "scalar") requested = Level::kScalar;
  else if (want == "sse2") requested = Level::kSse2;
  else if (want == "avx2") requested = Level::kAvx2;
  return static_cast<int>(requested) < static_cast<int>(best) ? requested : best;
}

// ---------------------------------------------------------------------------
// Scalar kernels — the reference implementation every level must match.
// ---------------------------------------------------------------------------

void decompose_scalar(const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
                      std::uint64_t set_mask, unsigned set_shift, std::uint64_t* set_out,
                      std::uint64_t* tag_out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t line = addrs[i] >> line_shift;
    set_out[i] = line & set_mask;
    tag_out[i] = line >> set_shift;
  }
}

std::size_t decompose_sampled_scalar(const std::uint64_t* addrs, std::size_t n,
                                     unsigned line_shift, std::uint64_t set_mask,
                                     unsigned set_shift, std::uint64_t sample_mask,
                                     unsigned sample_shift, std::uint64_t* set_out,
                                     std::uint64_t* tag_out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t line = addrs[i] >> line_shift;
    if ((line & sample_mask) != 0) continue;
    set_out[kept] = (line & set_mask) >> sample_shift;
    tag_out[kept] = line >> set_shift;
    ++kept;
  }
  return kept;
}

void shift_right_scalar(const std::uint64_t* addrs, std::size_t n, unsigned shift,
                        std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = addrs[i] >> shift;
}

#if KNL_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 kernels (2 x 64-bit lanes). Shift counts are runtime values, so the
// variable-count forms (_mm_srl_epi64) are used throughout.
// ---------------------------------------------------------------------------

void decompose_sse2(const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
                    std::uint64_t set_mask, unsigned set_shift, std::uint64_t* set_out,
                    std::uint64_t* tag_out) {
  const __m128i ls = _mm_cvtsi32_si128(static_cast<int>(line_shift));
  const __m128i ss = _mm_cvtsi32_si128(static_cast<int>(set_shift));
  const __m128i mask = _mm_set1_epi64x(static_cast<long long>(set_mask));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(addrs + i));
    const __m128i line = _mm_srl_epi64(a, ls);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(set_out + i), _mm_and_si128(line, mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(tag_out + i), _mm_srl_epi64(line, ss));
  }
  decompose_scalar(addrs + i, n - i, line_shift, set_mask, set_shift, set_out + i,
                   tag_out + i);
}

std::size_t decompose_sampled_sse2(const std::uint64_t* addrs, std::size_t n,
                                   unsigned line_shift, std::uint64_t set_mask,
                                   unsigned set_shift, std::uint64_t sample_mask,
                                   unsigned sample_shift, std::uint64_t* set_out,
                                   std::uint64_t* tag_out) {
  const __m128i ls = _mm_cvtsi32_si128(static_cast<int>(line_shift));
  const __m128i smask = _mm_set1_epi64x(static_cast<long long>(sample_mask));
  const __m128i zero = _mm_setzero_si128();
  std::size_t kept = 0;
  std::size_t i = 0;
  alignas(16) std::uint64_t lanes[2];
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(addrs + i));
    const __m128i line = _mm_srl_epi64(a, ls);
    // Lane keeps iff (line & sample_mask) == 0; movemask yields one bit per
    // lane so fully-rejected pairs (the common case) cost no extraction.
    // SSE2 has no 64-bit compare, so test both 32-bit halves: cmpeq_epi32
    // then AND each half with its shuffled partner — a 64-bit lane is
    // all-ones iff both halves compared equal to zero.
    const __m128i eq32 = _mm_cmpeq_epi32(_mm_and_si128(line, smask), zero);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const int keep = _mm_movemask_pd(_mm_castsi128_pd(eq64));
    if (keep == 0) continue;
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), line);
    for (int lane = 0; lane < 2; ++lane) {
      if ((keep & (1 << lane)) == 0) continue;
      set_out[kept] = (lanes[lane] & set_mask) >> sample_shift;
      tag_out[kept] = lanes[lane] >> set_shift;
      ++kept;
    }
  }
  kept += decompose_sampled_scalar(addrs + i, n - i, line_shift, set_mask, set_shift,
                                   sample_mask, sample_shift, set_out + kept,
                                   tag_out + kept);
  return kept;
}

void shift_right_sse2(const std::uint64_t* addrs, std::size_t n, unsigned shift,
                      std::uint64_t* out) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(addrs + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_srl_epi64(a, sh));
  }
  shift_right_scalar(addrs + i, n - i, shift, out + i);
}

// ---------------------------------------------------------------------------
// AVX2 kernels (4 x 64-bit lanes), compiled with a target attribute so the
// rest of the library keeps the portable baseline ISA; only ever called
// after __builtin_cpu_supports("avx2") reported true.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void decompose_avx2(
    const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
    std::uint64_t set_mask, unsigned set_shift, std::uint64_t* set_out,
    std::uint64_t* tag_out) {
  const __m128i ls = _mm_cvtsi32_si128(static_cast<int>(line_shift));
  const __m128i ss = _mm_cvtsi32_si128(static_cast<int>(set_shift));
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(set_mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs + i));
    const __m256i line = _mm256_srl_epi64(a, ls);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(set_out + i),
                        _mm256_and_si256(line, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tag_out + i),
                        _mm256_srl_epi64(line, ss));
  }
  decompose_scalar(addrs + i, n - i, line_shift, set_mask, set_shift, set_out + i,
                   tag_out + i);
}

__attribute__((target("avx2"))) std::size_t decompose_sampled_avx2(
    const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
    std::uint64_t set_mask, unsigned set_shift, std::uint64_t sample_mask,
    unsigned sample_shift, std::uint64_t* set_out, std::uint64_t* tag_out) {
  const __m128i ls = _mm_cvtsi32_si128(static_cast<int>(line_shift));
  const __m256i smask = _mm256_set1_epi64x(static_cast<long long>(sample_mask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t kept = 0;
  std::size_t i = 0;
  alignas(32) std::uint64_t lanes[4];
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs + i));
    const __m256i line = _mm256_srl_epi64(a, ls);
    const int keep = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(line, smask), zero)));
    if (keep == 0) continue;
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), line);
    for (int lane = 0; lane < 4; ++lane) {
      if ((keep & (1 << lane)) == 0) continue;
      set_out[kept] = (lanes[lane] & set_mask) >> sample_shift;
      tag_out[kept] = lanes[lane] >> set_shift;
      ++kept;
    }
  }
  kept += decompose_sampled_scalar(addrs + i, n - i, line_shift, set_mask, set_shift,
                                   sample_mask, sample_shift, set_out + kept,
                                   tag_out + kept);
  return kept;
}

__attribute__((target("avx2"))) void shift_right_avx2(const std::uint64_t* addrs,
                                                      std::size_t n, unsigned shift,
                                                      std::uint64_t* out) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_srl_epi64(a, sh));
  }
  shift_right_scalar(addrs + i, n - i, shift, out + i);
}

#endif  // KNL_SIMD_X86

}  // namespace

Level cpu_level() noexcept {
#if KNL_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kSse2;  // SSE2 is the x86-64 baseline
#else
  return Level::kScalar;
#endif
}

Level active_level() noexcept {
  const int cached = g_level.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Level>(cached);
  const Level resolved = resolve_from_env(cpu_level());
  g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
    case Level::kScalar: break;
  }
  return "scalar";
}

Level set_level_for_testing(Level level) noexcept {
  const Level best = cpu_level();
  const Level clamped =
      static_cast<int>(level) < static_cast<int>(best) ? level : best;
  g_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

void reset_level_for_testing() noexcept {
  g_level.store(-1, std::memory_order_relaxed);
}

void decompose_pow2(const std::uint64_t* addrs, std::size_t n, unsigned line_shift,
                    std::uint64_t set_mask, unsigned set_shift, std::uint64_t* set_out,
                    std::uint64_t* tag_out) {
  switch (active_level()) {
#if KNL_SIMD_X86
    case Level::kAvx2:
      decompose_avx2(addrs, n, line_shift, set_mask, set_shift, set_out, tag_out);
      return;
    case Level::kSse2:
      decompose_sse2(addrs, n, line_shift, set_mask, set_shift, set_out, tag_out);
      return;
#endif
    default:
      decompose_scalar(addrs, n, line_shift, set_mask, set_shift, set_out, tag_out);
      return;
  }
}

std::size_t decompose_pow2_sampled(const std::uint64_t* addrs, std::size_t n,
                                   unsigned line_shift, std::uint64_t set_mask,
                                   unsigned set_shift, std::uint64_t sample_mask,
                                   unsigned sample_shift, std::uint64_t* set_out,
                                   std::uint64_t* tag_out) {
  switch (active_level()) {
#if KNL_SIMD_X86
    case Level::kAvx2:
      return decompose_sampled_avx2(addrs, n, line_shift, set_mask, set_shift,
                                    sample_mask, sample_shift, set_out, tag_out);
    case Level::kSse2:
      return decompose_sampled_sse2(addrs, n, line_shift, set_mask, set_shift,
                                    sample_mask, sample_shift, set_out, tag_out);
#endif
    default:
      return decompose_sampled_scalar(addrs, n, line_shift, set_mask, set_shift,
                                      sample_mask, sample_shift, set_out, tag_out);
  }
}

void shift_right(const std::uint64_t* addrs, std::size_t n, unsigned shift,
                 std::uint64_t* out) {
  switch (active_level()) {
#if KNL_SIMD_X86
    case Level::kAvx2: shift_right_avx2(addrs, n, shift, out); return;
    case Level::kSse2: shift_right_sse2(addrs, n, shift, out); return;
#endif
    default: shift_right_scalar(addrs, n, shift, out); return;
  }
}

}  // namespace knl::sim::simd
