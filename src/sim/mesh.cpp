#include "sim/mesh.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace knl::sim {

Mesh::Mesh(MeshConfig config) : config_(config) {
  if (config_.tiles_x <= 0 || config_.tiles_y <= 0) {
    throw std::invalid_argument("Mesh: tile grid dimensions must be positive");
  }
  // Exact mean Manhattan distance between two independent uniform tiles.
  // In quadrant mode directory traffic stays within a half-width/half-height
  // quadrant, so the effective grid is (x/2, y/2) — matching the latency
  // reduction quadrant mode is designed for.
  int gx = config_.tiles_x;
  int gy = config_.tiles_y;
  if (config_.mode == ClusterMode::Quadrant || config_.mode == ClusterMode::Snc4) {
    gx = (gx + 1) / 2;
    gy = (gy + 1) / 2;
  }
  auto mean_1d = [](int n) {
    // E|a-b| for a,b uniform over {0..n-1} = (n^2-1)/(3n).
    const double nd = n;
    return (nd * nd - 1.0) / (3.0 * nd);
  };
  mean_hops_ = mean_1d(gx) + mean_1d(gy);
}

int Mesh::hops(int tile_a, int tile_b) const {
  const int total = tiles();
  if (tile_a < 0 || tile_b < 0 || tile_a >= total || tile_b >= total) {
    throw std::out_of_range("Mesh::hops: tile id out of range");
  }
  const int ax = tile_a % config_.tiles_x, ay = tile_a / config_.tiles_x;
  const int bx = tile_b % config_.tiles_x, by = tile_b / config_.tiles_x;
  return std::abs(ax - bx) + std::abs(ay - by);
}

double Mesh::directory_latency_ns() const {
  return config_.directory_lookup_ns + mean_hops_ * config_.hop_latency_ns;
}

double Mesh::remote_l2_forward_ns() const {
  // Directory lookup, then forward request to owner and data response:
  // roughly three mesh traversals plus the tag access in the remote L2.
  return directory_latency_ns() + 2.0 * mean_hops_ * config_.hop_latency_ns + 8.0;
}

}  // namespace knl::sim
