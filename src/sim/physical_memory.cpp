#include "sim/physical_memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl::sim {

PhysicalMemory::PhysicalMemory(PhysicalMemoryConfig config)
    : config_(config),
      ddr_{MemoryNode(MemNode::DDR, config.ddr), 0, {}},
      hbm_{MemoryNode(MemNode::HBM, config.hbm), 0, {}},
      rng_(config.seed) {
  if (config_.page_bytes == 0) {
    throw std::invalid_argument("PhysicalMemory: page_bytes must be positive");
  }
  if (config_.fragmentation < 0.0 || config_.fragmentation > 1.0) {
    throw std::invalid_argument("PhysicalMemory: fragmentation must be in [0,1]");
  }
}

PhysicalMemory::NodeState& PhysicalMemory::state(MemNode which) {
  return which == MemNode::DDR ? ddr_ : hbm_;
}
const PhysicalMemory::NodeState& PhysicalMemory::state(MemNode which) const {
  return which == MemNode::DDR ? ddr_ : hbm_;
}

const MemoryNode& PhysicalMemory::node(MemNode which) const { return state(which).node; }
MemoryNode& PhysicalMemory::node(MemNode which) { return state(which).node; }

std::uint64_t PhysicalMemory::total_frames(MemNode which) const {
  return node(which).capacity_bytes() / config_.page_bytes;
}

std::uint64_t PhysicalMemory::free_frames(MemNode which) const {
  return node(which).free_bytes() / config_.page_bytes;
}

std::optional<std::vector<Frame>> PhysicalMemory::allocate(MemNode which,
                                                           std::uint64_t count) {
  auto& st = state(which);
  if (count > free_frames(which)) return std::nullopt;
  if (!st.node.reserve(count * config_.page_bytes)) return std::nullopt;

  std::vector<Frame> frames;
  frames.reserve(static_cast<std::size_t>(count));
  std::bernoulli_distribution fragment(config_.fragmentation);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t idx;
    // Prefer recycled frames when fragmentation strikes (long-uptime
    // behaviour: freed frames are scattered); otherwise extend the
    // contiguous run.
    if (!st.free_list.empty() && (st.next_index >= total_frames(which) ||
                                  (config_.fragmentation > 0.0 && fragment(rng_)))) {
      idx = st.free_list.back();
      st.free_list.pop_back();
    } else if (st.next_index < total_frames(which)) {
      idx = st.next_index++;
    } else {
      idx = st.free_list.back();
      st.free_list.pop_back();
    }
    frames.push_back(Frame{which, idx});
  }
  return frames;
}

void PhysicalMemory::free(const std::vector<Frame>& frames) {
  for (const Frame& f : frames) {
    auto& st = state(f.node);
    if (f.index >= total_frames(f.node)) {
      throw std::logic_error("PhysicalMemory::free: frame index out of range");
    }
    st.free_list.push_back(f.index);
    st.node.release(config_.page_bytes);
  }
}

void PhysicalMemory::reset() {
  for (auto* st : {&ddr_, &hbm_}) {
    st->node.reset();
    st->next_index = 0;
    st->free_list.clear();
  }
}

}  // namespace knl::sim
