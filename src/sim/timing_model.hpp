// Interval timing model built on Little's law (paper §IV-B cites it as the
// governing relation):
//
//   attainable_bw = min( node cap,  outstanding_bytes / effective_latency )
//
// Regular phases get high per-core MLP from the prefetcher, so demand
// exceeds DDR's cap and DDR is bandwidth-bound while MCDRAM has ~4x
// headroom — that is the paper's 2-3x speedup for DGEMM/MiniFE.  Random
// phases sustain only a couple of outstanding misses per thread, so
// throughput = concurrency / latency and MCDRAM's ~18% higher latency makes
// DDR win — until enough hardware threads raise concurrency to DDR's cap,
// at which point MCDRAM overtakes (the paper's XSBench crossover at 256
// threads).
#pragma once

#include <vector>

#include "core/types.hpp"
#include "sim/cache_hierarchy.hpp"
#include "sim/knl_params.hpp"
#include "sim/mcdram_cache.hpp"
#include "sim/tlb.hpp"
#include "sim/topology.hpp"
#include "trace/access_phase.hpp"

namespace knl::sim {

struct TimingConfig {
  params::NodeParams ddr = params::kDdr;
  params::NodeParams hbm = params::kHbm;
  HierarchyConfig hierarchy = {};
  TlbConfig tlb = {};
  McdramCacheConfig mcdram = {};
  int cores = params::kCores;
  int smt_per_core = params::kSmtPerCore;
  double seq_mlp_per_core = params::kSeqMlpPerCore;
  double rand_mlp_per_thread = params::kRandMlpPerThread;
  /// Latency inflation as utilization approaches the node cap (M/D/1-ish).
  double queue_coefficient = 0.30;
};

/// Timing of one phase under one run configuration.
struct PhaseTiming {
  double seconds = 0.0;
  double memory_bytes = 0.0;       ///< Traffic that reached DRAM/MCDRAM.
  double effective_latency_ns = 0.0;
  double achieved_bw_gbs = 0.0;    ///< memory_bytes / seconds (decimal GB/s).
  double concurrency_lines = 0.0;  ///< Outstanding line requests sustained.
  double mcdram_hit_rate = 1.0;    ///< Cache-mode hit rate (1 otherwise).
  bool bandwidth_bound = false;    ///< Node cap (not latency) limited it.
  bool compute_bound = false;
};

class TimingModel {
 public:
  explicit TimingModel(TimingConfig config = {});

  [[nodiscard]] const TimingConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheHierarchy& hierarchy() const noexcept { return hierarchy_; }
  [[nodiscard]] const TlbModel& tlb() const noexcept { return tlb_; }
  [[nodiscard]] const McdramCacheModel& mcdram() const noexcept { return mcdram_; }

  /// Time one phase. `hbm_fraction` is the fraction of the phase's pages
  /// resident in MCDRAM (0 for membind=0, 1 for membind=1, intermediate for
  /// interleave/preferred spill). Ignored in cache mode, where all pages
  /// live in DDR behind the MCDRAM cache.
  [[nodiscard]] PhaseTiming time_phase(const trace::AccessPhase& phase,
                                       const RunConfig& run,
                                       double hbm_fraction) const;

  /// N-tier generalization of time_phase over a declared topology.
  /// `fractions[i]` is the share of the phase's pages resident in tier i
  /// (must sum to ~1). Flat configurations drain every tier's share
  /// concurrently (seconds = max over tiers, the two-node rule generalized);
  /// cache mode routes the DRAM tier's share through the cache-front tier's
  /// blend while the remaining tiers (e.g. an NVM spill) are timed directly.
  /// On a two-tier topology whose params match this model's config the
  /// result is bit-identical to time_phase — asserted by
  /// tests/sim/tier_spill_test.cpp.
  [[nodiscard]] PhaseTiming time_phase_tiered(const trace::AccessPhase& phase,
                                              const RunConfig& run,
                                              const MemoryTopology& topology,
                                              const std::vector<double>& fractions) const;

  /// Hardware threads per core implied by a total thread count.
  [[nodiscard]] int ht_per_core(int threads) const;

  /// Outstanding line requests the phase sustains machine-wide.
  [[nodiscard]] double concurrency_lines(const trace::AccessPhase& phase,
                                         int threads) const;

  /// Effective per-access memory latency for a phase hitting `node`,
  /// including directory, paging and load-dependent queueing at
  /// `utilization` (0..1 of the node cap).
  [[nodiscard]] double effective_latency_ns(const trace::AccessPhase& phase,
                                            const params::NodeParams& node, int threads,
                                            double utilization) const;

  /// Bytes of the phase's logical traffic that reach the memory system
  /// (after L1/L2 filtering, line-granule amplification and write traffic).
  [[nodiscard]] double memory_traffic_bytes(const trace::AccessPhase& phase,
                                            int threads) const;

  /// Node bandwidth cap applicable to the phase's pattern.
  [[nodiscard]] double node_cap_gbs(const trace::AccessPhase& phase,
                                    const params::NodeParams& node) const;

 private:
  struct NodePath {
    double bytes = 0.0;
    double latency_ns = 0.0;
    double cap_gbs = 0.0;
    double bw_gbs = 0.0;
    double seconds = 0.0;
    bool capped = false;
  };

  /// Regularity in [0,1]: 1 = fully prefetchable stream, 0 = random.
  [[nodiscard]] static double regularity(const trace::AccessPhase& phase);

  /// `conc_share` scales the machine-wide concurrency devoted to this node
  /// (split placements divide the cores' outstanding requests with traffic).
  [[nodiscard]] NodePath time_on_node(const trace::AccessPhase& phase,
                                      const params::NodeParams& node, int threads,
                                      double bytes, double conc_share) const;

  TimingConfig config_;
  CacheHierarchy hierarchy_;
  TlbModel tlb_;
  McdramCacheModel mcdram_;
};

}  // namespace knl::sim
