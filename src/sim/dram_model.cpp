#include "sim/dram_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl::sim {

DramTiming ddr4_2133_6ch() {
  DramTiming t;
  t.clock_mhz = 1066.0;
  t.channels = 6;
  t.bus_bytes = 8.0;
  t.banks_per_channel = 16;
  t.tCL = 14.06;
  t.tRCD = 14.06;
  t.tRP = 14.06;
  t.tRAS = 32.0;
  t.tFAW = 30.0;
  t.burst_ns = 3.75;        // BL8 @ 2133 MT/s
  t.stream_row_hit = 0.96;  // open-page policy under prefetched streams
  t.controller_ns = 100.0;  // controller + on-die fabric to the core
  return t;
}

DramTiming mcdram_8dev() {
  DramTiming t;
  // Eight devices, two pseudo-channels each, higher I/O rate: aggregate
  // parallelism is the point; per-access timing is DDR-like or worse
  // (Chang et al. — "latency is not reduced as expected").
  t.clock_mhz = 1800.0;
  t.channels = 16;
  t.bus_bytes = 8.0;
  t.banks_per_channel = 16;
  t.tCL = 15.0;
  t.tRCD = 15.0;
  t.tRP = 15.0;
  t.tRAS = 34.0;
  t.tFAW = 16.0;            // deep banking: activates come faster
  t.burst_ns = 2.22;        // 64 B @ 28.8 GB/s per pseudo-channel
  t.stream_row_hit = 0.99;
  t.controller_ns = 124.0;  // longer path: through the EDC mesh stops
  return t;
}

DramModel::DramModel(DramTiming timing) : timing_(timing) {
  if (timing_.channels < 1 || timing_.banks_per_channel < 1) {
    throw std::invalid_argument("DramModel: need >= 1 channel and bank");
  }
  if (timing_.clock_mhz <= 0.0 || timing_.bus_bytes <= 0.0 || timing_.burst_ns <= 0.0 ||
      timing_.tFAW <= 0.0) {
    throw std::invalid_argument("DramModel: timing values must be positive");
  }
  if (timing_.stream_row_hit < 0.0 || timing_.stream_row_hit > 1.0) {
    throw std::invalid_argument("DramModel: stream_row_hit outside [0,1]");
  }
}

double DramModel::row_cycle_ns() const { return timing_.tRAS + timing_.tRP; }

double DramModel::row_hit_ns() const { return timing_.tCL; }

double DramModel::row_closed_ns() const { return timing_.tRCD + timing_.tCL; }

double DramModel::row_conflict_ns() const {
  return timing_.tRP + timing_.tRCD + timing_.tCL;
}

double DramModel::idle_latency_ns() const {
  return timing_.controller_ns + row_closed_ns();
}

double DramModel::peak_bw_gbs() const {
  // DDR data rate = 2 beats per clock.
  return static_cast<double>(timing_.channels) * timing_.bus_bytes *
         (2.0 * timing_.clock_mhz * 1e6) / 1e9;
}

double DramModel::stream_bw_gbs() const {
  // Per line and channel: the bus is busy for `burst`; the occasional row
  // miss stalls the open-page stream for precharge + activate.
  const double miss = 1.0 - timing_.stream_row_hit;
  const double line_ns = timing_.burst_ns + miss * (timing_.tRP + timing_.tRCD);
  return static_cast<double>(timing_.channels) * 64.0 / line_ns;  // B/ns == GB/s
}

double DramModel::random_bw_gbs() const {
  // Uniform-random lines: essentially every access activates a new row.
  // The four-activate window bounds activates per channel: 4 per tFAW.
  const double activates_per_s =
      static_cast<double>(timing_.channels) * 4.0 / (timing_.tFAW * 1e-9);
  // Bank-level parallelism is a second ceiling: each bank serves one line
  // per row cycle.
  const double bank_lines_per_s =
      static_cast<double>(timing_.channels) *
      static_cast<double>(timing_.banks_per_channel) / (row_cycle_ns() * 1e-9);
  const double lines_per_s = std::min(activates_per_s, bank_lines_per_s);
  return lines_per_s * 64.0 / 1e9;
}

}  // namespace knl::sim
