#include "sim/reuse_profile.hpp"

#include <algorithm>
#include <bit>
#include <future>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "sim/cache.hpp"
#include "sim/simd.hpp"

namespace knl::sim {

namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::uint64_t kMtfSetThreshold = 4096;

}  // namespace

ReuseProfile::ReuseProfile(ReuseProfileConfig config) : config_(config) {
  if (!is_pow2(config_.line_bytes)) {
    throw std::invalid_argument("ReuseProfile: line_bytes must be a power of two");
  }
  if (config_.num_sets == 0) {
    throw std::invalid_argument("ReuseProfile: num_sets must be >= 1");
  }
  if (config_.sample_every == 0) {
    throw std::invalid_argument("ReuseProfile: sample_every must be >= 1");
  }
  if (config_.max_depth == 0) {
    throw std::invalid_argument("ReuseProfile: max_depth must be >= 1");
  }
  if (config_.shard_stride == 0 || config_.shard_phase >= config_.shard_stride) {
    throw std::invalid_argument("ReuseProfile: shard_phase must be < shard_stride");
  }
  num_sampled_sets_ =
      (config_.num_sets + config_.sample_every - 1) / config_.sample_every;
  if (num_sampled_sets_ > (1ull << 26)) {
    throw std::invalid_argument("ReuseProfile: too many sampled sets (> 2^26)");
  }

  use_mtf_ = config_.strategy == ReuseStrategy::kMtf ||
             (config_.strategy == ReuseStrategy::kAuto &&
              config_.num_sets >= kMtfSetThreshold);
  if (use_mtf_) {
    mtf_.resize(static_cast<std::size_t>(num_sampled_sets_));
  } else {
    fenwick_.resize(static_cast<std::size_t>(num_sampled_sets_));
    for (FenwickSet& set : fenwick_) set.tree.assign(1, 0);  // 1-indexed dummy
  }

  line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
  // The SIMD decompose path needs every index operand to be a shift/mask:
  // pow2 set count, and sampling either off or a pow2 stride within the set
  // bits — exactly CacheSim's conditions.
  pow2_path_ = is_pow2(config_.num_sets) &&
               (config_.sample_every == 1 ||
                (is_pow2(config_.sample_every) &&
                 config_.sample_every <= config_.num_sets));
  if (pow2_path_) {
    set_shift_ = static_cast<unsigned>(std::countr_zero(config_.num_sets));
    set_mask_ = config_.num_sets - 1;
    sample_shift_ = static_cast<unsigned>(std::countr_zero(config_.sample_every));
    sample_mask_ = config_.sample_every - 1;
  }
}

void ReuseProfile::observe(const std::uint64_t* addrs, std::size_t n) {
  if (n == 0) return;
  cumulative_valid_ = false;
  if (!pow2_path_) {
    observe_scalar(addrs, n);
    return;
  }
  if (soa_set_.empty()) {
    soa_set_.resize(simd::kSoaChunk);
    soa_tag_.resize(simd::kSoaChunk);
  }
  const bool filtered = config_.shard_stride != 1;
  for (std::size_t done = 0; done < n;) {
    const std::size_t chunk = std::min(n - done, simd::kSoaChunk);
    std::size_t kept = chunk;
    if (config_.sample_every == 1) {
      simd::decompose_pow2(addrs + done, chunk, line_shift_, set_mask_, set_shift_,
                           soa_set_.data(), soa_tag_.data());
    } else {
      kept = simd::decompose_pow2_sampled(addrs + done, chunk, line_shift_, set_mask_,
                                          set_shift_, sample_mask_, sample_shift_,
                                          soa_set_.data(), soa_tag_.data());
    }
    for (std::size_t i = 0; i < kept; ++i) {
      const std::uint64_t sampled_idx = soa_set_[i];
      if (filtered && sampled_idx % config_.shard_stride != config_.shard_phase) {
        continue;
      }
      apply(sampled_idx, soa_tag_[i]);
    }
    done += chunk;
  }
}

void ReuseProfile::observe_scalar(const std::uint64_t* addrs, std::size_t n) {
  const bool filtered = config_.shard_stride != 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t line = addrs[i] >> line_shift_;
    const std::uint64_t set_idx = line % config_.num_sets;
    if (config_.sample_every != 1 && set_idx % config_.sample_every != 0) continue;
    const std::uint64_t sampled_idx = set_idx / config_.sample_every;
    if (filtered && sampled_idx % config_.shard_stride != config_.shard_phase) {
      continue;
    }
    apply(sampled_idx, line / config_.num_sets);
  }
}

void ReuseProfile::apply(std::uint64_t sampled_idx, std::uint64_t tag) {
  ++sampled_;
  if (use_mtf_) {
    apply_mtf(mtf_[static_cast<std::size_t>(sampled_idx)], tag);
  } else {
    apply_fenwick(fenwick_[static_cast<std::size_t>(sampled_idx)], tag);
  }
}

void ReuseProfile::apply_mtf(std::vector<std::uint64_t>& set, std::uint64_t tag) {
  // Recency order, front = MRU: the tag's position IS its stack distance.
  const std::size_t depth = set.size();
  for (std::size_t i = 0; i < depth; ++i) {
    if (set[i] == tag) {
      record_distance(i);
      for (std::size_t j = i; j > 0; --j) set[j] = set[j - 1];
      set[0] = tag;
      return;
    }
  }
  ++cold_;
  set.insert(set.begin(), tag);
}

void ReuseProfile::apply_fenwick(FenwickSet& set, std::uint64_t tag) {
  // Bennett-Kruskal: one mark per distinct tag, kept at its latest access
  // time; distance = marks in (last, now]. The append exploits that a new
  // BIT slot's value is v plus the sums of its sub-spans, all already known.
  const auto prefix = [&set](std::uint64_t i) {
    std::uint64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += set.tree[i];
    return s;
  };
  const auto add = [&set](std::uint64_t i, std::uint64_t delta) {
    for (; i <= set.now; i += i & (~i + 1)) set.tree[i] += delta;
  };
  const auto append = [&set](std::uint64_t v) {
    const std::uint64_t idx = ++set.now;
    std::uint64_t s = v;
    for (std::uint64_t step = 1; step < (idx & (~idx + 1)); step <<= 1) {
      s += set.tree[idx - step];
    }
    set.tree.push_back(s);
  };

  const auto it = set.last.find(tag);
  if (it == set.last.end()) {
    ++cold_;
    append(1);
    set.last.emplace(tag, set.now);
    return;
  }
  const std::uint64_t last = it->second;
  record_distance(prefix(set.now) - prefix(last));
  add(last, ~0ull);  // unmark the stale slot (unsigned wrap = subtract 1)
  append(1);
  it->second = set.now;
}

void ReuseProfile::record_distance(std::uint64_t distance) {
  if (distance >= config_.max_depth) {
    ++beyond_;
    return;
  }
  if (distance >= histogram_.size()) histogram_.resize(distance + 1, 0);
  ++histogram_[static_cast<std::size_t>(distance)];
}

void ReuseProfile::ensure_cumulative() const {
  if (cumulative_valid_) return;
  cumulative_.resize(histogram_.size());
  std::uint64_t running = 0;
  for (std::size_t d = 0; d < histogram_.size(); ++d) {
    running += histogram_[d];
    cumulative_[d] = running;
  }
  cumulative_valid_ = true;
}

std::uint64_t ReuseProfile::hits_for_ways(std::uint64_t ways) const {
  if (ways == 0) return 0;
  if (ways > config_.max_depth) {
    throw std::invalid_argument(
        "ReuseProfile::hits_for_ways: ways exceeds the profiled max_depth");
  }
  ensure_cumulative();
  if (cumulative_.empty()) return 0;
  const std::size_t top = std::min<std::uint64_t>(ways, cumulative_.size());
  return cumulative_[top - 1];
}

std::uint64_t ReuseProfile::hits_for_capacity(std::uint64_t capacity_bytes) const {
  return hits_for_ways(capacity_bytes / (config_.line_bytes * config_.num_sets));
}

double ReuseProfile::hit_rate_for_capacity(std::uint64_t capacity_bytes) const {
  if (sampled_ == 0) return 0.0;
  return static_cast<double>(hits_for_capacity(capacity_bytes)) /
         static_cast<double>(sampled_);
}

void ReuseProfile::merge(const ReuseProfile& other) {
  if (other.config_.line_bytes != config_.line_bytes ||
      other.config_.num_sets != config_.num_sets ||
      other.config_.sample_every != config_.sample_every ||
      other.config_.max_depth != config_.max_depth) {
    throw std::invalid_argument("ReuseProfile::merge: geometry mismatch");
  }
  sampled_ += other.sampled_;
  cold_ += other.cold_;
  beyond_ += other.beyond_;
  if (other.histogram_.size() > histogram_.size()) {
    histogram_.resize(other.histogram_.size(), 0);
  }
  for (std::size_t d = 0; d < other.histogram_.size(); ++d) {
    histogram_[d] += other.histogram_[d];
  }
  cumulative_valid_ = false;
}

void ReuseProfile::reset() {
  sampled_ = 0;
  cold_ = 0;
  beyond_ = 0;
  histogram_.clear();
  cumulative_.clear();
  cumulative_valid_ = false;
  for (auto& set : mtf_) set.clear();
  for (FenwickSet& set : fenwick_) {
    set.tree.assign(1, 0);
    set.last.clear();
    set.now = 0;
  }
}

ReuseProfile profile_trace(const std::uint64_t* addrs, std::size_t n,
                           const ReuseProfileConfig& config, int workers) {
  if (config.shard_stride != 1) {
    throw std::invalid_argument("profile_trace: config must be unsharded");
  }
  const std::uint64_t sampled_sets =
      (config.num_sets + config.sample_every - 1) / config.sample_every;
  const int resolved = workers <= 0
                           ? static_cast<int>(core::ThreadPool::hardware_threads())
                           : workers;
  const std::uint64_t shards = std::min<std::uint64_t>(
      {static_cast<std::uint64_t>(std::max(resolved, 1)), sampled_sets, 16});
  if (shards <= 1 || n == 0) {
    ReuseProfile profile(config);
    profile.observe(addrs, n);
    return profile;
  }

  // Each shard profiles its modular slice of the sampled sets over the whole
  // stream; the union is exact because distances never cross sets.
  std::vector<ReuseProfile> parts;
  parts.reserve(static_cast<std::size_t>(shards));
  for (std::uint64_t k = 0; k < shards; ++k) {
    ReuseProfileConfig shard_config = config;
    shard_config.shard_stride = shards;
    shard_config.shard_phase = k;
    parts.emplace_back(shard_config);
  }
  {
    core::ThreadPool pool(static_cast<unsigned>(shards));
    std::vector<std::future<void>> futures;
    futures.reserve(parts.size());
    for (ReuseProfile& part : parts) {
      futures.push_back(pool.submit([&part, addrs, n] { part.observe(addrs, n); }));
    }
    for (auto& future : futures) future.get();
  }
  ReuseProfile profile(config);
  for (const ReuseProfile& part : parts) profile.merge(part);
  return profile;
}

CapacityReference replay_capacity_reference(const std::uint64_t* addrs, std::size_t n,
                                            const ReuseProfileConfig& geometry,
                                            std::uint64_t ways) {
  if (ways == 0) {
    throw std::invalid_argument("replay_capacity_reference: ways must be >= 1");
  }
  CapacityReference out;
  if (is_pow2(ways) && ways <= (1ull << 20)) {
    CacheSim sim(CacheConfig{
        .capacity_bytes = geometry.line_bytes * geometry.num_sets * ways,
        .line_bytes = geometry.line_bytes,
        .ways = static_cast<int>(ways),
        .sample_every = geometry.sample_every});
    const BlockStats block = sim.access_block(std::span(addrs, n));
    out.sampled = block.sampled;
    out.hits = block.hits;
    return out;
  }

  // Non-pow2 associativity: per-set MTF list truncated at `ways` entries —
  // plain LRU with the same set/tag decomposition and sampling rule.
  const unsigned line_shift =
      static_cast<unsigned>(std::countr_zero(geometry.line_bytes));
  const std::uint64_t sampled_sets =
      (geometry.num_sets + geometry.sample_every - 1) / geometry.sample_every;
  std::vector<std::vector<std::uint64_t>> sets(
      static_cast<std::size_t>(sampled_sets));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t line = addrs[i] >> line_shift;
    const std::uint64_t set_idx = line % geometry.num_sets;
    if (geometry.sample_every != 1 && set_idx % geometry.sample_every != 0) continue;
    auto& set = sets[static_cast<std::size_t>(set_idx / geometry.sample_every)];
    const std::uint64_t tag = line / geometry.num_sets;
    ++out.sampled;
    bool hit = false;
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (set[j] == tag) {
        hit = true;
        for (std::size_t k = j; k > 0; --k) set[k] = set[k - 1];
        set[0] = tag;
        break;
      }
    }
    if (hit) {
      ++out.hits;
      continue;
    }
    set.insert(set.begin(), tag);
    if (set.size() > ways) set.pop_back();
  }
  return out;
}

}  // namespace knl::sim
