// A physical memory node (DDR or MCDRAM) of the simulated machine:
// capacity accounting plus the bandwidth/latency envelope used by the
// timing model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/types.hpp"
#include "sim/knl_params.hpp"

namespace knl::sim {

/// One NUMA-visible memory device. Tracks simulated capacity (frames are
/// never backed by host memory, so paper-scale footprints are representable)
/// and exposes the calibrated performance envelope.
class MemoryNode {
 public:
  MemoryNode(MemNode id, params::NodeParams p) : id_(id), params_(p) {}

  [[nodiscard]] MemNode id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return params_.capacity_bytes; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept {
    return params_.capacity_bytes - used_bytes_;
  }

  [[nodiscard]] double peak_bw_gbs() const noexcept { return params_.peak_bw_gbs; }
  [[nodiscard]] double stream_bw_gbs() const noexcept { return params_.stream_bw_gbs; }
  [[nodiscard]] double random_bw_gbs() const noexcept { return params_.random_bw_gbs; }
  [[nodiscard]] double idle_latency_ns() const noexcept { return params_.idle_latency_ns; }

  /// Reserve `bytes` of simulated capacity. Returns false (and reserves
  /// nothing) if the node cannot hold them — the caller decides whether to
  /// fall back to another node or fail, mirroring numactl/memkind policies.
  [[nodiscard]] bool reserve(std::uint64_t bytes) noexcept {
    if (bytes > free_bytes()) return false;
    used_bytes_ += bytes;
    return true;
  }

  /// Release previously reserved capacity.
  void release(std::uint64_t bytes) {
    if (bytes > used_bytes_) {
      throw std::logic_error("MemoryNode::release: releasing more than reserved on " +
                             to_string(id_));
    }
    used_bytes_ -= bytes;
  }

  /// Drop all reservations (fresh process image).
  void reset() noexcept { used_bytes_ = 0; }

 private:
  MemNode id_;
  params::NodeParams params_;
  std::uint64_t used_bytes_ = 0;
};

}  // namespace knl::sim
