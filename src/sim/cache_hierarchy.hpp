// Analytic model of the on-die SRAM cache hierarchy (L1 + tiled L2 + mesh
// directory), providing the cache-filtering probabilities and latency tiers
// the timing model composes with the memory nodes.
//
// The exact CacheSim validates these closed forms at test scale; at paper
// scale (GB footprints, billions of accesses) only the analytic path is
// evaluated.
#pragma once

#include <cstdint>

#include "sim/knl_params.hpp"
#include "sim/mesh.hpp"

namespace knl::sim {

struct HierarchyConfig {
  std::uint64_t l1_bytes = params::kL1Bytes;
  std::uint64_t l2_tile_bytes = params::kL2Bytes;
  int tiles = params::kTiles;
  double l1_latency_ns = params::kL1LatencyNs;
  double l2_latency_ns = params::kL2LatencyNs;
  /// Fraction of aggregate L2 usable before conflict/sharing waste.
  double l2_effectiveness = 0.85;
  MeshConfig mesh = {};
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(HierarchyConfig config = {});

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Mesh& mesh() const noexcept { return mesh_; }

  [[nodiscard]] std::uint64_t aggregate_l2_bytes() const {
    return config_.l2_tile_bytes * static_cast<std::uint64_t>(config_.tiles);
  }

  /// Steady-state probability that one pass of a *repeated sequential sweep*
  /// over `footprint` bytes is served from L2 (all tiles cooperating).
  /// ~1 while the footprint fits the aggregate L2, rolling off past it —
  /// cyclic sweeps larger than the cache get no reuse under LRU.
  [[nodiscard]] double sweep_l2_hit(std::uint64_t footprint_bytes) const;

  /// Probability that a uniform-random line access over `footprint` bytes
  /// hits in *some* L2 when `threads` threads share the data (lines spread
  /// across all tiles' L2s; a remote hit is serviced by mesh forwarding).
  [[nodiscard]] double random_l2_hit(std::uint64_t footprint_bytes, int threads) const;

  /// Probability a *single-threaded* random access hits the thread's own
  /// tile L2 (the latency-probe scenario: only one tile is warm).
  [[nodiscard]] double random_local_l2_hit(std::uint64_t footprint_bytes) const;

  /// Mean service latency of an L2 hit for random shared access: blend of
  /// local hit and cache-to-cache forward from a remote tile.
  [[nodiscard]] double random_l2_service_ns(std::uint64_t footprint_bytes,
                                            int threads) const;

  /// Latency contribution of the directory walk that precedes every memory
  /// access (the mesh tier of Fig. 3).
  [[nodiscard]] double directory_overhead_ns() const;

 private:
  HierarchyConfig config_;
  Mesh mesh_;
};

}  // namespace knl::sim
