#include "sim/memory_node.hpp"

// Header-only implementation; this translation unit anchors the type for the
// library and keeps one non-inline symbol for ODR sanity in debug tooling.
namespace knl::sim {
static_assert(sizeof(MemoryNode) > 0);
}  // namespace knl::sim
