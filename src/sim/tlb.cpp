#include "sim/tlb.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "sim/replay_telemetry.hpp"
#include "sim/simd.hpp"

namespace knl::sim {

double TlbModel::miss_probability(std::uint64_t footprint_bytes) const {
  const double coverage = static_cast<double>(config_.coverage_bytes());
  const double footprint = static_cast<double>(footprint_bytes);
  if (footprint <= coverage) return 0.0;
  return 1.0 - coverage / footprint;
}

double TlbModel::walk_cost_ns(std::uint64_t footprint_bytes) const {
  // Blend from cached-walk to memory-walk cost as the page-table working set
  // outgrows the cache hierarchy. The logistic keeps the transition smooth,
  // matching the gradual latency rise in Fig. 3 rather than a step.
  const double x = static_cast<double>(footprint_bytes) /
                   static_cast<double>(config_.walk_thrash_bytes);
  const double blend = x / (1.0 + x);
  return config_.walk_cached_ns +
         blend * (config_.walk_memory_ns - config_.walk_cached_ns);
}

double TlbModel::expected_penalty_ns(std::uint64_t footprint_bytes) const {
  return miss_probability(footprint_bytes) * walk_cost_ns(footprint_bytes);
}

TlbSim::TlbSim(TlbConfig config) : config_(config) {
  if (config_.page_bytes == 0) {
    throw std::invalid_argument("TlbSim: page_bytes must be positive");
  }
  if (config_.entries < 1) {
    throw std::invalid_argument("TlbSim: need >= 1 TLB entry");
  }
  page_pow2_ = std::has_single_bit(config_.page_bytes);
  if (page_pow2_) {
    page_shift_ = static_cast<unsigned>(std::countr_zero(config_.page_bytes));
  }
  const auto entries = static_cast<std::size_t>(config_.entries);
  // Load factor <= 1/2 keeps bucket chains short.
  const std::size_t buckets = std::bit_ceil(entries * 2);
  bucket_shift_ = 64 - static_cast<unsigned>(std::countr_zero(buckets));
  pages_.assign(entries, 0);
  lru_prev_.assign(entries, -1);
  lru_next_.assign(entries, -1);
  bucket_head_.assign(buckets, -1);
  bucket_next_.assign(entries, -1);
}

void TlbSim::access_block(const std::uint64_t* addrs, std::size_t n,
                          std::uint8_t* hit_out) {
  ReplayTelemetry::instance().record_block(n);
  if (!page_pow2_) {
    for (std::size_t i = 0; i < n; ++i) hit_out[i] = access(addrs[i]) ? 1 : 0;
    return;
  }
  if (soa_pages_.empty()) soa_pages_.resize(simd::kSoaChunk);
  for (std::size_t off = 0; off < n; off += simd::kSoaChunk) {
    const std::size_t m = std::min(simd::kSoaChunk, n - off);
    simd::shift_right(addrs + off, m, page_shift_, soa_pages_.data());
    accesses_ += m;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t page = soa_pages_[i];
      // Same MRU front-check as access(): page-local runs never probe.
      if (head_ >= 0 && pages_[static_cast<std::size_t>(head_)] == page) {
        hit_out[off + i] = 1;
      } else {
        hit_out[off + i] = access_slow(page) ? 1 : 0;
      }
    }
  }
}

void TlbSim::move_to_front(std::int32_t slot) {
  if (slot == head_) return;
  const auto s = static_cast<std::size_t>(slot);
  lru_next_[static_cast<std::size_t>(lru_prev_[s])] = lru_next_[s];
  if (lru_next_[s] >= 0) {
    lru_prev_[static_cast<std::size_t>(lru_next_[s])] = lru_prev_[s];
  } else {
    tail_ = lru_prev_[s];
  }
  lru_prev_[s] = -1;
  lru_next_[s] = head_;
  lru_prev_[static_cast<std::size_t>(head_)] = slot;
  head_ = slot;
}

bool TlbSim::access_slow(std::uint64_t page) {
  const std::size_t bucket = bucket_of(page);
  for (std::int32_t s = bucket_head_[bucket]; s >= 0;
       s = bucket_next_[static_cast<std::size_t>(s)]) {
    if (pages_[static_cast<std::size_t>(s)] == page) {
      move_to_front(s);
      return true;
    }
  }
  ++misses_;
  std::int32_t slot;
  if (filled_ < config_.entries) {
    slot = filled_++;
  } else {
    // Evict the LRU tail: unhook it from its bucket chain and the list end.
    slot = tail_;
    const auto s = static_cast<std::size_t>(slot);
    std::int32_t* link = &bucket_head_[bucket_of(pages_[s])];
    while (*link != slot) link = &bucket_next_[static_cast<std::size_t>(*link)];
    *link = bucket_next_[s];
    tail_ = lru_prev_[s];
    if (tail_ >= 0) {
      lru_next_[static_cast<std::size_t>(tail_)] = -1;
    } else {
      head_ = -1;
    }
  }
  const auto s = static_cast<std::size_t>(slot);
  pages_[s] = page;
  bucket_next_[s] = bucket_head_[bucket];
  bucket_head_[bucket] = slot;
  lru_prev_[s] = -1;
  lru_next_[s] = head_;
  if (head_ >= 0) lru_prev_[static_cast<std::size_t>(head_)] = slot;
  head_ = slot;
  if (tail_ < 0) tail_ = slot;
  return false;
}

}  // namespace knl::sim
