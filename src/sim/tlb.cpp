#include "sim/tlb.hpp"

#include <algorithm>
#include <cmath>

namespace knl::sim {

double TlbModel::miss_probability(std::uint64_t footprint_bytes) const {
  const double coverage = static_cast<double>(config_.coverage_bytes());
  const double footprint = static_cast<double>(footprint_bytes);
  if (footprint <= coverage) return 0.0;
  return 1.0 - coverage / footprint;
}

double TlbModel::walk_cost_ns(std::uint64_t footprint_bytes) const {
  // Blend from cached-walk to memory-walk cost as the page-table working set
  // outgrows the cache hierarchy. The logistic keeps the transition smooth,
  // matching the gradual latency rise in Fig. 3 rather than a step.
  const double x = static_cast<double>(footprint_bytes) /
                   static_cast<double>(config_.walk_thrash_bytes);
  const double blend = x / (1.0 + x);
  return config_.walk_cached_ns +
         blend * (config_.walk_memory_ns - config_.walk_cached_ns);
}

double TlbModel::expected_penalty_ns(std::uint64_t footprint_bytes) const {
  return miss_probability(footprint_bytes) * walk_cost_ns(footprint_bytes);
}

bool TlbSim::access(std::uint64_t addr) {
  ++accesses_;
  const std::uint64_t page = addr / config_.page_bytes;
  if (auto it = map_.find(page); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  lru_.push_front(page);
  map_[page] = lru_.begin();
  if (map_.size() > static_cast<std::size_t>(config_.entries)) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

}  // namespace knl::sim
