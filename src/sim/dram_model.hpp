// Device-level DRAM timing model.
//
// The machine model's per-node bandwidth caps (stream_bw_gbs,
// random_bw_gbs in knl_params.hpp) are calibrated to the paper's
// measurements. This module derives the same quantities from JEDEC-style
// device timing — channels, banks, row-buffer policy, tCL/tRCD/tRP/tRAS —
// so the calibration can be cross-checked against device physics
// (tests/sim/dram_model_test.cpp asserts the derived numbers bracket the
// calibrated caps). It also explains *why* random line traffic reaches only
// ~half of streaming bandwidth on DDR4: every line miss pays a row cycle,
// and bank-level parallelism, not the bus, becomes the limit.
#pragma once

#include <cstdint>

namespace knl::sim {

/// JEDEC-ish device/channel timing (all times in ns unless noted).
struct DramTiming {
  double clock_mhz = 1066.0;   ///< I/O clock (DDR: 2x data rate)
  int channels = 6;
  double bus_bytes = 8.0;      ///< per channel per beat
  int banks_per_channel = 16;
  double tCL = 14.06;          ///< CAS latency (15 cycles @ 1066 MHz)
  double tRCD = 14.06;         ///< RAS-to-CAS
  double tRP = 14.06;          ///< precharge
  double tRAS = 32.0;          ///< row active time
  double tFAW = 30.0;          ///< four-activate window
  double burst_ns = 3.75;      ///< 64 B line: BL8 @ 2133 MT/s
  /// Fraction of streaming accesses that hit an open row (prefetched
  /// sequential traffic with open-page policy).
  double stream_row_hit = 0.94;
  /// Controller + on-die fabric overhead added to the device latency.
  double controller_ns = 55.0;
};

/// DDR4-2133, six channels — the testbed's off-package memory.
[[nodiscard]] DramTiming ddr4_2133_6ch();

/// MCDRAM: eight on-package devices with wide internal buses and deep
/// banking; per-device timings are close to DDR but the aggregate beats it
/// on parallelism, not latency (Chang et al., cited by the paper).
[[nodiscard]] DramTiming mcdram_8dev();

class DramModel {
 public:
  explicit DramModel(DramTiming timing);

  [[nodiscard]] const DramTiming& timing() const noexcept { return timing_; }

  /// Row cycle time tRC = tRAS + tRP.
  [[nodiscard]] double row_cycle_ns() const;

  /// Device access latency for a row-buffer hit / closed bank / conflict.
  [[nodiscard]] double row_hit_ns() const;
  [[nodiscard]] double row_closed_ns() const;
  [[nodiscard]] double row_conflict_ns() const;

  /// Unloaded end-to-end latency (controller + average device access under
  /// a mostly-idle system with closed pages).
  [[nodiscard]] double idle_latency_ns() const;

  /// Pin-rate peak bandwidth: channels * bus * data rate.
  [[nodiscard]] double peak_bw_gbs() const;

  /// Attainable streaming bandwidth: the bus is busy `burst` out of every
  /// `burst + (1-row_hit) * overhead` ns per line.
  [[nodiscard]] double stream_bw_gbs() const;

  /// Attainable uniform-random line bandwidth: every access conflicts with
  /// probability (1 - 1/banks) and pays a row cycle; bank-level parallelism
  /// across all channels bounds the line rate at banks_total / tRC.
  [[nodiscard]] double random_bw_gbs() const;

 private:
  DramTiming timing_;
};

}  // namespace knl::sim
