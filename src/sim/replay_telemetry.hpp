// Process-wide replay-engine telemetry.
//
// The replay substrate (CacheSim/TlbSim block paths, ParallelReplay's epoch
// pipeline) is what the placement service bills every query against, so its
// activity is surfaced through the service's /stats endpoint. Counters are
// relaxed atomics bumped once per *block* or per *epoch* — never per
// address — so the hot loops pay one fetch_add per few thousand events.
#pragma once

#include <atomic>
#include <cstdint>

namespace knl::sim {

/// Monotonic counters snapshot (see ReplayTelemetry::snapshot()).
struct ReplayTelemetrySnapshot {
  std::uint64_t classified_blocks = 0;     ///< access_block calls (cache + TLB)
  std::uint64_t classified_addresses = 0;  ///< addresses those blocks carried
  std::uint64_t replay_runs = 0;           ///< ParallelReplay::replay calls
  std::uint64_t replay_epochs = 0;         ///< epochs reconciled
  std::uint64_t overlapped_epochs = 0;     ///< epochs classified while a prior
                                           ///< epoch was still reconciling
};

class ReplayTelemetry {
 public:
  static ReplayTelemetry& instance() noexcept {
    static ReplayTelemetry telemetry;
    return telemetry;
  }

  void record_block(std::uint64_t addresses) noexcept {
    classified_blocks_.fetch_add(1, std::memory_order_relaxed);
    classified_addresses_.fetch_add(addresses, std::memory_order_relaxed);
  }
  void record_replay(std::uint64_t epochs, std::uint64_t overlapped) noexcept {
    replay_runs_.fetch_add(1, std::memory_order_relaxed);
    replay_epochs_.fetch_add(epochs, std::memory_order_relaxed);
    overlapped_epochs_.fetch_add(overlapped, std::memory_order_relaxed);
  }

  [[nodiscard]] ReplayTelemetrySnapshot snapshot() const noexcept {
    ReplayTelemetrySnapshot s;
    s.classified_blocks = classified_blocks_.load(std::memory_order_relaxed);
    s.classified_addresses = classified_addresses_.load(std::memory_order_relaxed);
    s.replay_runs = replay_runs_.load(std::memory_order_relaxed);
    s.replay_epochs = replay_epochs_.load(std::memory_order_relaxed);
    s.overlapped_epochs = overlapped_epochs_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  ReplayTelemetry() = default;

  std::atomic<std::uint64_t> classified_blocks_{0};
  std::atomic<std::uint64_t> classified_addresses_{0};
  std::atomic<std::uint64_t> replay_runs_{0};
  std::atomic<std::uint64_t> replay_epochs_{0};
  std::atomic<std::uint64_t> overlapped_epochs_{0};
};

}  // namespace knl::sim
