// Declared memory topology: the machine's memory hierarchy as *data*.
//
// Until this module existed, the machine model hard-wired exactly two
// memory nodes (MCDRAM + DDR, the paper's KNL testbed). A MemoryTopology
// instead *declares* N tiers — each with a name, a device kind, the
// calibrated bandwidth/latency/capacity envelope, a contiguous controller
// range (the zsim-ndp `typeRanges` shape: controllers are numbered 0..C-1
// and each tier owns a disjoint contiguous slice), an optional
// backing-store edge (where this tier's overflow spills), and an optional
// cache-front flag (the tier can serve as a hardware-managed cache for its
// backing tier, like MCDRAM in the paper's cache mode).
//
// Topologies round-trip through a line-oriented *machine file* format
// (parse_machine_file / to_machine_file), so new machines are shipped as
// data under machines/ rather than as code. Validation failures are
// knl::Error CorruptInput with stable `topology/...` slugs.
//
// Three profiles ship with the repository (see docs/MACHINES.md):
//   knl7210  — the paper's testbed: 16 GiB MCDRAM over 96 GiB DDR4.
//   xeonmax  — a Xeon Max / Sapphire Rapids HBM node: 64 GiB HBM2e over
//              DDR5 (Aurora paper parameters).
//   knl_nvm  — the KNL testbed with a third NVM-class tier behind DDR
//              (the NUMA-emulation paper's spill path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/knl_params.hpp"

namespace knl::sim {

/// Device class of one tier. Decides nothing by itself — the performance
/// envelope lives in NodeParams — but names the technology for reports,
/// placement heuristics and machine files.
enum class TierKind : std::uint8_t {
  HBM,   ///< on-package high-bandwidth memory (MCDRAM, HBM2e)
  DRAM,  ///< conventional DDR channels
  NVM,   ///< non-volatile / far memory (Optane-class, emulated NUMA far node)
};

[[nodiscard]] std::string to_string(TierKind kind);

/// One declared memory tier.
struct MemoryTier {
  std::string name;                ///< unique, e.g. "MCDRAM", "DDR4", "NVM"
  TierKind kind = TierKind::DRAM;
  params::NodeParams params{};     ///< capacity + bandwidth/latency envelope
  /// Contiguous controller slice [controllers_begin, controllers_end) this
  /// tier owns — the zsim-ndp typeRanges shape. Slices of different tiers
  /// must not overlap.
  int controllers_begin = 0;
  int controllers_end = 0;
  /// Index of the tier absorbing this tier's capacity overflow (the spill /
  /// demotion target); -1 = terminal, overflow is infeasible.
  int backing = -1;
  /// True when the tier can front its backing tier as a hardware-managed
  /// (direct-mapped, memory-side) cache — MCDRAM cache mode.
  bool cache_front = false;

  [[nodiscard]] int controllers() const noexcept {
    return controllers_end - controllers_begin;
  }

  friend bool operator==(const MemoryTier&, const MemoryTier&) = default;
};

/// Byte share one tier holds after waterfall placement.
struct TierShare {
  int tier = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const TierShare&, const TierShare&) = default;
};

/// Result of placing a resident set across the declared tiers.
struct TierPlacement {
  bool ok = false;
  std::string error;               ///< infeasibility reason when !ok
  std::vector<TierShare> shares;   ///< waterfall order, preferred tier first

  /// Fraction of the placed bytes resident in `tier` (0 when !ok or empty).
  [[nodiscard]] double fraction_in(int tier) const;
  [[nodiscard]] std::uint64_t total_bytes() const;
};

class MemoryTopology {
 public:
  std::string name = "knl7210";   ///< machine-file identity
  std::vector<MemoryTier> tiers;  ///< fast-to-slow by convention

  /// Check every structural invariant; throws knl::Error CorruptInput with
  /// a stable slug on the first violation:
  ///   topology/empty              no tiers declared
  ///   topology/duplicate-name     two tiers share a name
  ///   topology/zero-capacity      a tier has no capacity
  ///   topology/bad-envelope       non-positive bandwidth or latency
  ///   topology/bad-range          empty or negative controller slice
  ///   topology/overlapping-ranges two controller slices intersect
  ///   topology/bad-backing        backing index out of range / self
  ///   topology/backing-cycle      backing edges form a cycle
  ///   topology/bad-cache-front    cache_front tier has no backing tier
  void validate() const;

  [[nodiscard]] std::size_t tier_count() const noexcept { return tiers.size(); }
  [[nodiscard]] const MemoryTier& tier(std::size_t i) const { return tiers.at(i); }

  /// Index of the tier named `name`; -1 when absent.
  [[nodiscard]] int find_tier(const std::string& tier_name) const;

  /// The fastest tier: highest stream bandwidth (HBM on every shipped
  /// profile). Requires a validated, non-empty topology.
  [[nodiscard]] int fast_tier() const;

  /// The terminal conventional-DRAM tier: the DRAM-kind tier that numactl's
  /// membind=0 would target. Falls back to the highest-capacity tier when
  /// no DRAM-kind tier exists.
  [[nodiscard]] int dram_tier() const;

  /// Tier indices along the backing chain starting at (and including)
  /// `from` — the waterfall spill order.
  [[nodiscard]] std::vector<int> spill_chain(int from) const;

  /// The tier fronting `backing_tier` as a hardware cache; -1 when none.
  [[nodiscard]] int cache_front_of(int backing_tier) const;

  [[nodiscard]] std::uint64_t total_capacity_bytes() const;

  /// Comma-joined tier names, fast first ("MCDRAM,DDR4,NVM") — the compact
  /// spelling /stats and reports use.
  [[nodiscard]] std::string tier_names() const;

  /// Mix every declared field into an FNV-1a fingerprint accumulator (the
  /// MachineConfig::fingerprint building block).
  void mix_fingerprint(std::uint64_t& h) const;

  friend bool operator==(const MemoryTopology&, const MemoryTopology&) = default;

  // -- machine-file round trip ---------------------------------------------

  /// Serialize to the machine-file format (parse_machine_file inverts this
  /// exactly; round-trip asserted by tests/sim/topology_test.cpp).
  [[nodiscard]] std::string to_machine_file() const;

  /// Parse a machine file. Throws knl::Error CorruptInput with slug
  /// `topology/parse` (syntax), `topology/unknown-kind` (bad tier kind),
  /// `topology/unknown-field`, or any validate() slug — the parsed topology
  /// is always validated before being returned.
  [[nodiscard]] static MemoryTopology parse_machine_file(const std::string& text);

  // -- shipped profiles ----------------------------------------------------

  /// The paper testbed: 16 GiB MCDRAM (cache-capable) over 96 GiB DDR4.
  [[nodiscard]] static MemoryTopology knl7210();

  /// Xeon Max / Sapphire Rapids HBM node (Aurora paper): 64 GiB HBM2e
  /// (cache-capable) over 512 GiB DDR5.
  [[nodiscard]] static MemoryTopology xeon_max();

  /// KNL testbed plus a 512 GiB NVM-class far tier behind DDR (the
  /// NUMA-emulation paper's RAM -> far-memory spill path).
  [[nodiscard]] static MemoryTopology knl_nvm();
};

/// Waterfall placement: fill `preferred` to capacity, spill the remainder
/// down its backing chain. `strict` forbids spilling (numactl membind
/// semantics: infeasible unless the preferred tier holds everything).
[[nodiscard]] TierPlacement place_waterfall(const MemoryTopology& topology,
                                            std::uint64_t bytes, int preferred,
                                            bool strict = false);

}  // namespace knl::sim
