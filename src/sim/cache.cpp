#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace knl::sim {

namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && std::has_single_bit(v); }

}  // namespace

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  if (config_.capacity_bytes == 0 || config_.line_bytes == 0 || config_.ways <= 0) {
    throw std::invalid_argument("CacheSim: capacity, line size and ways must be positive");
  }
  if (!is_pow2(config_.line_bytes)) {
    throw std::invalid_argument("CacheSim: line_bytes must be a power of two");
  }
  if (!is_pow2(static_cast<std::uint64_t>(config_.ways))) {
    throw std::invalid_argument("CacheSim: ways must be a power of two");
  }
  if (config_.sample_every == 0) {
    throw std::invalid_argument("CacheSim: sample_every must be >= 1");
  }
  num_sets_ = config_.num_sets();  // safe: divisor validated above
  if (num_sets_ == 0) {
    throw std::invalid_argument("CacheSim: capacity smaller than one set");
  }
  line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
  sets_pow2_ = is_pow2(num_sets_);
  if (sets_pow2_) {
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    set_mask_ = num_sets_ - 1;
  }
  num_sampled_sets_ = (num_sets_ + config_.sample_every - 1) / config_.sample_every;
  slabs_.resize(
      static_cast<std::size_t>((num_sampled_sets_ + kSlabSets - 1) >> kSlabSetShift));
}

CacheSim::Slab& CacheSim::slab_for(std::uint64_t sampled_idx) {
  auto& slot = slabs_[static_cast<std::size_t>(sampled_idx >> kSlabSetShift)];
  if (!slot) {
    const std::uint64_t first = (sampled_idx >> kSlabSetShift) << kSlabSetShift;
    const std::uint64_t sets = std::min(kSlabSets, num_sampled_sets_ - first);
    const auto entries =
        static_cast<std::size_t>(sets) * static_cast<std::size_t>(config_.ways);
    slot = std::make_unique<Slab>();
    slot->tag.assign(entries, 0);
    slot->tick.assign(entries, 0);
  }
  return *slot;
}

bool CacheSim::access_sampled(std::uint64_t line, std::uint64_t set_idx) {
  const std::uint64_t sampled =
      config_.sample_every == 1 ? set_idx : set_idx / config_.sample_every;
  Slab& slab = slab_for(sampled);
  const std::size_t base = static_cast<std::size_t>(sampled & (kSlabSets - 1)) *
                           static_cast<std::size_t>(config_.ways);
  std::uint64_t* tags = slab.tag.data() + base;
  std::uint64_t* ticks = slab.tick.data() + base;
  const std::uint64_t tag = tag_of(line);

  ++tick_;
  ++stats_.accesses;
  // One pass finds a hit and the victim: lowest-index invalid way if any
  // (an invalid victim is sticky), else the strict-minimum tick (LRU).
  int victim = 0;
  std::uint64_t victim_tick = ticks[0];
  for (int w = 0; w < config_.ways; ++w) {
    const std::uint64_t t = ticks[w];
    if (t != 0 && tags[w] == tag) {
      ticks[w] = tick_;
      ++stats_.hits;
      return true;
    }
    if (victim_tick != 0 && (t == 0 || t < victim_tick)) {
      victim = w;
      victim_tick = t;
    }
  }
  ++stats_.misses;
  if (victim_tick != 0) {
    ++stats_.evictions;
  } else {
    ++resident_;
  }
  tags[victim] = tag;
  ticks[victim] = tick_;
  return false;
}

template <int kWays, bool kPow2>
BlockStats CacheSim::access_block_ways(std::span<const std::uint64_t> addrs) {
  // Hoist the hot constants; the way loop unrolls at compile time. In the
  // kPow2 instantiation every runtime fallback folds away: set and tag come
  // from shift/mask, and the sampling stride degenerates to sample_mask == 0
  // when sampling is off, so the hot loop carries no configuration branches.
  const unsigned line_shift = line_shift_;
  const std::uint64_t set_mask = set_mask_;
  const unsigned set_shift = set_shift_;
  const std::uint64_t num_sets = num_sets_;
  const std::uint64_t sample_every = config_.sample_every;
  const bool sample_pow2 = std::has_single_bit(sample_every);
  const std::uint64_t sample_mask = sample_every - 1;  // kPow2: 0 when exact
  const auto sample_shift =
      sample_pow2 ? static_cast<unsigned>(std::countr_zero(sample_every)) : 0u;

  std::uint64_t tick = tick_;
  BlockStats block;
  std::uint64_t evictions = 0;
  std::uint64_t filled = 0;

  // Slab memoization: sweeps and chases revisit the same slab for long runs.
  std::uint64_t cached_slab_idx = ~0ull;
  std::uint64_t* cached_tags = nullptr;
  std::uint64_t* cached_ticks = nullptr;

  const std::size_t n = addrs.size();
  const std::uint64_t* data = addrs.data();
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t line;
    std::uint64_t set_idx;
    std::uint64_t sampled;
    std::uint64_t tag;
    if constexpr (kPow2) {
      // "Set not sampled" is a mask test directly on the address
      // (sample_mask fits inside set_mask), so runs of skipped addresses
      // burn ~1 cycle each in this scan instead of the full loop body. The
      // 4-wide leg takes one predictable branch per four addresses.
      if (sample_mask != 0) {
        while (i + 4 <= n) {
          const bool s0 = ((data[i] >> line_shift) & sample_mask) != 0;
          const bool s1 = ((data[i + 1] >> line_shift) & sample_mask) != 0;
          const bool s2 = ((data[i + 2] >> line_shift) & sample_mask) != 0;
          const bool s3 = ((data[i + 3] >> line_shift) & sample_mask) != 0;
          if (!(s0 & s1 & s2 & s3)) break;
          i += 4;
        }
        while (i < n && ((data[i] >> line_shift) & sample_mask) != 0) ++i;
        if (i >= n) break;
      }
      line = data[i++] >> line_shift;
      set_idx = line & set_mask;
      sampled = set_idx >> sample_shift;
      tag = line >> set_shift;
    } else {
      line = data[i++] >> line_shift;
      set_idx = line % num_sets;
      sampled = set_idx;
      if (sample_every != 1) {
        if (sample_pow2) {
          if ((set_idx & sample_mask) != 0) continue;
          sampled = set_idx >> sample_shift;
        } else {
          if (set_idx % sample_every != 0) continue;
          sampled = set_idx / sample_every;
        }
      }
      tag = line / num_sets;
    }
    const std::uint64_t slab_idx = sampled >> kSlabSetShift;
    if (slab_idx != cached_slab_idx) {
      Slab& slab = slab_for(sampled);
      cached_slab_idx = slab_idx;
      cached_tags = slab.tag.data();
      cached_ticks = slab.tick.data();
    }
    const std::size_t base =
        static_cast<std::size_t>(sampled & (kSlabSets - 1)) * static_cast<std::size_t>(kWays);
    std::uint64_t* tags = cached_tags + base;
    std::uint64_t* ticks = cached_ticks + base;

    ++tick;
    ++block.sampled;
    int victim = 0;
    std::uint64_t victim_tick = ticks[0];
    bool hit = false;
    for (int w = 0; w < kWays; ++w) {
      const std::uint64_t t = ticks[w];
      if (t != 0 && tags[w] == tag) {
        ticks[w] = tick;
        hit = true;
        break;
      }
      if (victim_tick != 0 && (t == 0 || t < victim_tick)) {
        victim = w;
        victim_tick = t;
      }
    }
    if (hit) {
      ++block.hits;
      continue;
    }
    ++block.misses;
    if (victim_tick != 0) {
      ++evictions;
    } else {
      ++filled;
    }
    tags[victim] = tag;
    ticks[victim] = tick;
  }

  tick_ = tick;
  resident_ += filled;
  stats_.accesses += block.sampled;
  stats_.hits += block.hits;
  stats_.misses += block.misses;
  stats_.evictions += evictions;
  return block;
}

BlockStats CacheSim::access_block_generic(std::span<const std::uint64_t> addrs) {
  const CacheStats before = stats_;
  for (const std::uint64_t addr : addrs) (void)access(addr);
  return {stats_.accesses - before.accesses, stats_.hits - before.hits,
          stats_.misses - before.misses};
}

BlockStats CacheSim::access_block(std::span<const std::uint64_t> addrs) {
  const std::uint64_t sample_every = config_.sample_every;
  const bool pow2 = sets_pow2_ && (sample_every == 1 ||
                                   (std::has_single_bit(sample_every) &&
                                    sample_every <= num_sets_));
  switch (config_.ways) {
    case 1:
      return pow2 ? access_block_ways<1, true>(addrs) : access_block_ways<1, false>(addrs);
    case 2:
      return pow2 ? access_block_ways<2, true>(addrs) : access_block_ways<2, false>(addrs);
    case 4:
      return pow2 ? access_block_ways<4, true>(addrs) : access_block_ways<4, false>(addrs);
    case 8:
      return pow2 ? access_block_ways<8, true>(addrs) : access_block_ways<8, false>(addrs);
    case 16:
      return pow2 ? access_block_ways<16, true>(addrs) : access_block_ways<16, false>(addrs);
    default:
      return access_block_generic(addrs);
  }
}

std::uint64_t CacheSim::access_range(std::uint64_t addr, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  std::uint64_t misses = 0;
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line * config_.line_bytes)) ++misses;
  }
  return misses;
}

void CacheSim::flush() {
  for (auto& slab : slabs_) slab.reset();
  resident_ = 0;
}

}  // namespace knl::sim
