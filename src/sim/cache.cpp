#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

#include "sim/replay_telemetry.hpp"
#include "sim/simd.hpp"

namespace knl::sim {

namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && std::has_single_bit(v); }

}  // namespace

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  if (config_.capacity_bytes == 0 || config_.line_bytes == 0 || config_.ways <= 0) {
    throw std::invalid_argument("CacheSim: capacity, line size and ways must be positive");
  }
  if (!is_pow2(config_.line_bytes)) {
    throw std::invalid_argument("CacheSim: line_bytes must be a power of two");
  }
  if (!is_pow2(static_cast<std::uint64_t>(config_.ways))) {
    throw std::invalid_argument("CacheSim: ways must be a power of two");
  }
  if (config_.sample_every == 0) {
    throw std::invalid_argument("CacheSim: sample_every must be >= 1");
  }
  num_sets_ = config_.num_sets();  // safe: divisor validated above
  if (num_sets_ == 0) {
    throw std::invalid_argument("CacheSim: capacity smaller than one set");
  }
  line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
  sets_pow2_ = is_pow2(num_sets_);
  if (sets_pow2_) {
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    set_mask_ = num_sets_ - 1;
  }
  num_sampled_sets_ = (num_sets_ + config_.sample_every - 1) / config_.sample_every;
  slabs_.resize(
      static_cast<std::size_t>((num_sampled_sets_ + kSlabSets - 1) >> kSlabSetShift));
}

CacheSim::Slab& CacheSim::slab_for(std::uint64_t sampled_idx) {
  auto& slot = slabs_[static_cast<std::size_t>(sampled_idx >> kSlabSetShift)];
  if (!slot) {
    const std::uint64_t first = (sampled_idx >> kSlabSetShift) << kSlabSetShift;
    const std::uint64_t sets = std::min(kSlabSets, num_sampled_sets_ - first);
    const auto entries =
        static_cast<std::size_t>(sets) * static_cast<std::size_t>(config_.ways);
    slot = std::make_unique<Slab>();
    slot->tag.assign(entries, 0);
    slot->tick.assign(entries, 0);
  }
  return *slot;
}

bool CacheSim::access_sampled(std::uint64_t line, std::uint64_t set_idx) {
  const std::uint64_t sampled =
      config_.sample_every == 1 ? set_idx : set_idx / config_.sample_every;
  Slab& slab = slab_for(sampled);
  const std::size_t base = static_cast<std::size_t>(sampled & (kSlabSets - 1)) *
                           static_cast<std::size_t>(config_.ways);
  std::uint64_t* tags = slab.tag.data() + base;
  std::uint64_t* ticks = slab.tick.data() + base;
  const std::uint64_t tag = tag_of(line);

  ++tick_;
  ++stats_.accesses;
  // One pass finds a hit and the victim: lowest-index invalid way if any
  // (an invalid victim is sticky), else the strict-minimum tick (LRU).
  int victim = 0;
  std::uint64_t victim_tick = ticks[0];
  for (int w = 0; w < config_.ways; ++w) {
    const std::uint64_t t = ticks[w];
    if (t != 0 && tags[w] == tag) {
      ticks[w] = tick_;
      ++stats_.hits;
      return true;
    }
    if (victim_tick != 0 && (t == 0 || t < victim_tick)) {
      victim = w;
      victim_tick = t;
    }
  }
  ++stats_.misses;
  if (victim_tick != 0) {
    ++stats_.evictions;
  } else {
    ++resident_;
  }
  tags[victim] = tag;
  ticks[victim] = tick_;
  return false;
}

void CacheSim::ensure_soa_scratch() {
  if (soa_set_.empty()) {
    soa_set_.resize(simd::kSoaChunk);
    soa_tag_.resize(simd::kSoaChunk);
  }
}

template <int kWays, bool kFlags>
void CacheSim::apply_block_pow2(const std::uint64_t* sets, const std::uint64_t* tags_in,
                                std::size_t n, std::uint8_t* hit_out, BlockStats& block,
                                std::uint64_t& evictions, std::uint64_t& filled,
                                SlabCursor& cursor) {
  std::uint64_t tick = tick_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sampled = sets[i];
    const std::uint64_t tag = tags_in[i];
    const std::uint64_t slab_idx = sampled >> kSlabSetShift;
    if (slab_idx != cursor.idx) {
      Slab& slab = slab_for(sampled);
      cursor.idx = slab_idx;
      cursor.tags = slab.tag.data();
      cursor.ticks = slab.tick.data();
    }
    const std::size_t base =
        static_cast<std::size_t>(sampled & (kSlabSets - 1)) * static_cast<std::size_t>(kWays);
    std::uint64_t* tags = cursor.tags + base;
    std::uint64_t* ticks = cursor.ticks + base;

    ++tick;
    ++block.sampled;
    int victim = 0;
    std::uint64_t victim_tick = ticks[0];
    bool hit = false;
    for (int w = 0; w < kWays; ++w) {
      const std::uint64_t t = ticks[w];
      if (t != 0 && tags[w] == tag) {
        ticks[w] = tick;
        hit = true;
        break;
      }
      if (victim_tick != 0 && (t == 0 || t < victim_tick)) {
        victim = w;
        victim_tick = t;
      }
    }
    if constexpr (kFlags) hit_out[i] = hit ? 1 : 0;
    if (hit) {
      ++block.hits;
      continue;
    }
    ++block.misses;
    if (victim_tick != 0) {
      ++evictions;
    } else {
      ++filled;
    }
    tags[victim] = tag;
    ticks[victim] = tick;
  }
  tick_ = tick;
}

template <int kWays, bool kFlags>
BlockStats CacheSim::access_block_soa(const std::uint64_t* addrs, std::size_t n,
                                      std::uint8_t* hit_out) {
  ensure_soa_scratch();
  const std::uint64_t sample_every = config_.sample_every;
  const bool sampling = sample_every != 1;
  const std::uint64_t sample_mask = sample_every - 1;
  const auto sample_shift =
      sampling ? static_cast<unsigned>(std::countr_zero(sample_every)) : 0u;

  BlockStats block;
  std::uint64_t evictions = 0;
  std::uint64_t filled = 0;
  SlabCursor cursor;
  for (std::size_t off = 0; off < n; off += simd::kSoaChunk) {
    const std::size_t m = std::min(simd::kSoaChunk, n - off);
    std::size_t kept;
    if (sampling) {
      // kFlags implies exact mode (dispatched below), so the sampled leg
      // never has to map compacted survivors back to flag positions.
      kept = simd::decompose_pow2_sampled(addrs + off, m, line_shift_, set_mask_,
                                          set_shift_, sample_mask, sample_shift,
                                          soa_set_.data(), soa_tag_.data());
    } else {
      simd::decompose_pow2(addrs + off, m, line_shift_, set_mask_, set_shift_,
                           soa_set_.data(), soa_tag_.data());
      kept = m;
    }
    apply_block_pow2<kWays, kFlags>(soa_set_.data(), soa_tag_.data(), kept,
                                    kFlags ? hit_out + off : nullptr, block, evictions,
                                    filled, cursor);
  }

  resident_ += filled;
  stats_.accesses += block.sampled;
  stats_.hits += block.hits;
  stats_.misses += block.misses;
  stats_.evictions += evictions;
  return block;
}

template <int kWays>
BlockStats CacheSim::access_block_scalar(std::span<const std::uint64_t> addrs) {
  // Non-power-of-two geometry: division/modulo index math, one predictable
  // sampling branch per address, same one-pass LRU scan as the SoA apply.
  const unsigned line_shift = line_shift_;
  const std::uint64_t num_sets = num_sets_;
  const std::uint64_t sample_every = config_.sample_every;
  const bool sample_pow2 = std::has_single_bit(sample_every);
  const std::uint64_t sample_mask = sample_every - 1;
  const auto sample_shift =
      sample_pow2 ? static_cast<unsigned>(std::countr_zero(sample_every)) : 0u;

  std::uint64_t tick = tick_;
  BlockStats block;
  std::uint64_t evictions = 0;
  std::uint64_t filled = 0;
  SlabCursor cursor;

  for (const std::uint64_t addr : addrs) {
    const std::uint64_t line = addr >> line_shift;
    const std::uint64_t set_idx = line % num_sets;
    std::uint64_t sampled = set_idx;
    if (sample_every != 1) {
      if (sample_pow2) {
        if ((set_idx & sample_mask) != 0) continue;
        sampled = set_idx >> sample_shift;
      } else {
        if (set_idx % sample_every != 0) continue;
        sampled = set_idx / sample_every;
      }
    }
    const std::uint64_t tag = line / num_sets;
    const std::uint64_t slab_idx = sampled >> kSlabSetShift;
    if (slab_idx != cursor.idx) {
      Slab& slab = slab_for(sampled);
      cursor.idx = slab_idx;
      cursor.tags = slab.tag.data();
      cursor.ticks = slab.tick.data();
    }
    const std::size_t base =
        static_cast<std::size_t>(sampled & (kSlabSets - 1)) * static_cast<std::size_t>(kWays);
    std::uint64_t* tags = cursor.tags + base;
    std::uint64_t* ticks = cursor.ticks + base;

    ++tick;
    ++block.sampled;
    int victim = 0;
    std::uint64_t victim_tick = ticks[0];
    bool hit = false;
    for (int w = 0; w < kWays; ++w) {
      const std::uint64_t t = ticks[w];
      if (t != 0 && tags[w] == tag) {
        ticks[w] = tick;
        hit = true;
        break;
      }
      if (victim_tick != 0 && (t == 0 || t < victim_tick)) {
        victim = w;
        victim_tick = t;
      }
    }
    if (hit) {
      ++block.hits;
      continue;
    }
    ++block.misses;
    if (victim_tick != 0) {
      ++evictions;
    } else {
      ++filled;
    }
    tags[victim] = tag;
    ticks[victim] = tick;
  }

  tick_ = tick;
  resident_ += filled;
  stats_.accesses += block.sampled;
  stats_.hits += block.hits;
  stats_.misses += block.misses;
  stats_.evictions += evictions;
  return block;
}

BlockStats CacheSim::access_block_generic(std::span<const std::uint64_t> addrs) {
  const CacheStats before = stats_;
  for (const std::uint64_t addr : addrs) (void)access(addr);
  return {stats_.accesses - before.accesses, stats_.hits - before.hits,
          stats_.misses - before.misses};
}

BlockStats CacheSim::access_block(std::span<const std::uint64_t> addrs) {
  ReplayTelemetry::instance().record_block(addrs.size());
  const std::uint64_t sample_every = config_.sample_every;
  const bool pow2 = sets_pow2_ && (sample_every == 1 ||
                                   (std::has_single_bit(sample_every) &&
                                    sample_every <= num_sets_));
  const std::uint64_t* data = addrs.data();
  const std::size_t n = addrs.size();
  switch (config_.ways) {
    case 1:
      return pow2 ? access_block_soa<1, false>(data, n, nullptr)
                  : access_block_scalar<1>(addrs);
    case 2:
      return pow2 ? access_block_soa<2, false>(data, n, nullptr)
                  : access_block_scalar<2>(addrs);
    case 4:
      return pow2 ? access_block_soa<4, false>(data, n, nullptr)
                  : access_block_scalar<4>(addrs);
    case 8:
      return pow2 ? access_block_soa<8, false>(data, n, nullptr)
                  : access_block_scalar<8>(addrs);
    case 16:
      return pow2 ? access_block_soa<16, false>(data, n, nullptr)
                  : access_block_scalar<16>(addrs);
    default:
      return access_block_generic(addrs);
  }
}

BlockStats CacheSim::access_block_flags(const std::uint64_t* addrs, std::size_t n,
                                        std::uint8_t* hit_out) {
  ReplayTelemetry::instance().record_block(n);
  // The SoA flags path requires exact mode (flag positions match input
  // positions only when no sampling compaction happens) and pow2 sets.
  if (config_.sample_every == 1 && sets_pow2_) {
    switch (config_.ways) {
      case 1: return access_block_soa<1, true>(addrs, n, hit_out);
      case 2: return access_block_soa<2, true>(addrs, n, hit_out);
      case 4: return access_block_soa<4, true>(addrs, n, hit_out);
      case 8: return access_block_soa<8, true>(addrs, n, hit_out);
      case 16: return access_block_soa<16, true>(addrs, n, hit_out);
      default: break;
    }
  }
  // Fallback: the per-address path (non-sampled sets report hits, exactly
  // like access()).
  const CacheStats before = stats_;
  for (std::size_t i = 0; i < n; ++i) hit_out[i] = access(addrs[i]) ? 1 : 0;
  return {stats_.accesses - before.accesses, stats_.hits - before.hits,
          stats_.misses - before.misses};
}

std::uint64_t CacheSim::access_range(std::uint64_t addr, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  std::uint64_t misses = 0;
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line * config_.line_bytes)) ++misses;
  }
  return misses;
}

void CacheSim::flush() {
  for (auto& slab : slabs_) slab.reset();
  resident_ = 0;
}

}  // namespace knl::sim
