#include "sim/cache.hpp"

#include <stdexcept>

namespace knl::sim {

CacheSim::CacheSim(CacheConfig config) : config_(config), num_sets_(0) {
  if (config_.capacity_bytes == 0 || config_.line_bytes == 0 || config_.ways <= 0) {
    throw std::invalid_argument("CacheSim: capacity, line size and ways must be positive");
  }
  num_sets_ = config_.num_sets();  // safe: divisor validated above
  if (num_sets_ == 0) {
    throw std::invalid_argument("CacheSim: capacity smaller than one set");
  }
  if (config_.sample_every == 0) {
    throw std::invalid_argument("CacheSim: sample_every must be >= 1");
  }
}

bool CacheSim::access(std::uint64_t addr) {
  const std::uint64_t line = addr / config_.line_bytes;
  const std::uint64_t set_idx = line % num_sets_;
  if (set_idx % config_.sample_every != 0) return true;  // not sampled

  ++tick_;
  ++stats_.accesses;
  auto& set = sets_[set_idx];
  if (set.empty()) set.resize(static_cast<std::size_t>(config_.ways));

  const std::uint64_t tag = line / num_sets_;
  Way* victim = &set[0];
  for (auto& way : set) {
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      if (victim->valid) victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  if (victim->valid) {
    ++stats_.evictions;
  } else {
    ++resident_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

std::uint64_t CacheSim::access_range(std::uint64_t addr, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  std::uint64_t misses = 0;
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line * config_.line_bytes)) ++misses;
  }
  return misses;
}

void CacheSim::flush() {
  sets_.clear();
  resident_ = 0;
}

}  // namespace knl::sim
