// MPI-style collective cost models over the Aries-class interconnect.
//
// The paper's applications are MPI codes (linked against Cray MPICH); at
// multi-node scale their communication is dominated by a handful of
// collectives — CG's dot-product allreduces, BFS's frontier alltoall,
// SUMMA's broadcasts. This module prices each collective with the standard
// algorithm literature (binomial broadcast, ring vs recursive-doubling
// allreduce, pairwise alltoall, dissemination barrier) on the alpha-beta
// network model, picking the better algorithm per message size the way an
// MPI library's tuned thresholds would.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/interconnect.hpp"

namespace knl::cluster {

struct CollectiveCost {
  double seconds = 0.0;
  int rounds = 0;                 ///< latency-bound steps on the critical path
  double wire_bytes_per_rank = 0; ///< bytes each rank moves
  std::string algorithm;
};

class Collectives {
 public:
  explicit Collectives(Interconnect net = Interconnect{}) : net_(net) {}

  /// Dissemination barrier: ceil(log2 p) rounds of zero-byte messages.
  [[nodiscard]] CollectiveCost barrier(int ranks) const;

  /// Binomial-tree broadcast: ceil(log2 p) rounds carrying the full buffer.
  [[nodiscard]] CollectiveCost broadcast(int ranks, std::uint64_t bytes) const;

  /// Reduce: binomial tree, same shape as broadcast (reduction flops
  /// ignored — the network dominates at these scales).
  [[nodiscard]] CollectiveCost reduce(int ranks, std::uint64_t bytes) const;

  /// Allreduce: recursive doubling (log p rounds, full buffer) for small
  /// messages; ring reduce-scatter + allgather (2(p-1) rounds, 2(p-1)/p of
  /// the buffer on the wire) for large ones. The cheaper wins.
  [[nodiscard]] CollectiveCost allreduce(int ranks, std::uint64_t bytes) const;

  /// Ring allgather: p-1 rounds, each rank receives (p-1)/p of the result.
  [[nodiscard]] CollectiveCost allgather(int ranks, std::uint64_t bytes_per_rank) const;

  /// Pairwise-exchange alltoall: p-1 rounds, each moving bytes_per_rank/p.
  [[nodiscard]] CollectiveCost alltoall(int ranks, std::uint64_t bytes_per_rank) const;

 private:
  [[nodiscard]] static int log2_ceil(int ranks);
  [[nodiscard]] double step(std::uint64_t bytes) const;  // alpha + bytes/beta

  Interconnect net_;
};

}  // namespace knl::cluster
