#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/fault/error.hpp"

namespace knl::cluster {

namespace comm {

CommModel halo3d(int iterations) {
  if (iterations < 1) throw std::invalid_argument("halo3d: iterations must be >= 1");
  return [iterations](std::uint64_t total_bytes, int nodes) {
    CommVolume v;
    if (nodes <= 1) return v;
    // Cubic decomposition: per-node volume V = total/nodes; halo surface
    // ~ 6 * V^(2/3) (in bytes, assuming byte-per-cell proportionality).
    const double per_node = static_cast<double>(total_bytes) / nodes;
    v.bytes_per_node = 6.0 * std::pow(per_node, 2.0 / 3.0) * iterations;
    v.messages = 6 * iterations;
    v.alltoall = false;
    return v;
  };
}

CommModel minife_cg(int iterations) {
  const CommModel halo = halo3d(iterations);
  return [halo, iterations](std::uint64_t total_bytes, int nodes) {
    CommVolume v = halo(total_bytes, nodes);
    if (nodes > 1) {
      v.allreduce_count = 2 * iterations;  // r.r and p.Ap dots per iteration
      v.allreduce_bytes = 8;
    }
    return v;
  };
}

CommModel alltoall(double traffic_fraction, int rounds) {
  if (traffic_fraction < 0.0 || traffic_fraction > 1.0) {
    throw std::invalid_argument("alltoall: traffic_fraction outside [0,1]");
  }
  if (rounds < 1) throw std::invalid_argument("alltoall: rounds must be >= 1");
  return [traffic_fraction, rounds](std::uint64_t total_bytes, int nodes) {
    CommVolume v;
    if (nodes <= 1) return v;
    const double per_node = static_cast<double>(total_bytes) / nodes;
    v.bytes_per_node = per_node * traffic_fraction * rounds;
    v.messages = (nodes - 1) * rounds;
    v.alltoall = true;
    return v;
  };
}

CommModel none() {
  return [](std::uint64_t, int) { return CommVolume{}; };
}

}  // namespace comm

ClusterMachine::ClusterMachine(MachineConfig node_config, InterconnectConfig net)
    : node_(node_config), net_(net), collectives_(Interconnect(net)) {}

ScalingPoint ClusterMachine::run_strong(const NodeWorkloadFactory& factory,
                                        std::uint64_t total_bytes, int nodes,
                                        const RunConfig& run_config,
                                        const CommModel& comm) const {
  if (nodes < 1) throw std::invalid_argument("run_strong: need >= 1 node");
  if (total_bytes == 0) throw std::invalid_argument("run_strong: empty problem");

  ScalingPoint point;
  point.nodes = nodes;
  point.per_node_bytes = total_bytes / static_cast<std::uint64_t>(nodes);
  if (point.per_node_bytes == 0) {
    point.note = "decomposition finer than one byte per node";
    return point;
  }

  const auto workload = factory(point.per_node_bytes);
  const RunResult node_run = node_.run(workload->profile(), run_config);
  if (!node_run.feasible) {
    point.note = node_run.infeasible_reason;
    return point;
  }

  const CommVolume volume = comm(total_bytes, nodes);
  double comm_seconds =
      volume.alltoall ? net_.alltoall_seconds(volume.bytes_per_node, nodes)
                      : net_.exchange_seconds(volume.bytes_per_node, volume.messages);
  if (volume.allreduce_count > 0 && nodes > 1) {
    comm_seconds += volume.allreduce_count *
                    collectives_.allreduce(nodes, volume.allreduce_bytes).seconds;
  }

  point.feasible = true;
  point.node_seconds = node_run.seconds;
  point.comm_seconds = comm_seconds;
  point.total_seconds = node_run.seconds + comm_seconds;
  return point;
}

std::vector<ScalingPoint> ClusterMachine::strong_scaling(
    const NodeWorkloadFactory& factory, std::uint64_t total_bytes,
    const std::vector<int>& node_counts, const RunConfig& run_config,
    const CommModel& comm) const {
  std::vector<ScalingPoint> points;
  points.reserve(node_counts.size());
  for (const int nodes : node_counts) {
    points.push_back(run_strong(factory, total_bytes, nodes, run_config, comm));
  }
  return points;
}

CapacityPlan CapacityPlanner::plan(const NodeWorkloadFactory& factory,
                                   std::uint64_t total_bytes,
                                   const std::vector<int>& node_counts, int threads,
                                   const CommModel& comm) const {
  CapacityPlan best;
  bool have_best = false;
  const std::uint64_t hbm_capacity =
      cluster_.node().config().timing.hbm.capacity_bytes;

  for (const int nodes : node_counts) {
    for (const MemConfig config :
         {MemConfig::DRAM, MemConfig::HBM, MemConfig::CacheMode}) {
      const ScalingPoint point = cluster_.run_strong(
          factory, total_bytes, nodes, RunConfig{config, threads}, comm);
      if (!point.feasible) continue;
      if (!have_best || point.total_seconds < best.point.total_seconds) {
        best.nodes = nodes;
        best.config = config;
        best.point = point;
        best.fits_hbm_per_node = point.per_node_bytes <= hbm_capacity;
        have_best = true;
      }
    }
  }
  if (!have_best) {
    throw Error::resource("cluster/no-feasible-config",
                          "CapacityPlanner: no feasible configuration found");
  }
  return best;
}

}  // namespace knl::cluster
