#include "cluster/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl::cluster {

int Collectives::log2_ceil(int ranks) {
  if (ranks < 1) throw std::invalid_argument("Collectives: need >= 1 rank");
  int rounds = 0;
  int span = 1;
  while (span < ranks) {
    span *= 2;
    ++rounds;
  }
  return rounds;
}

double Collectives::step(std::uint64_t bytes) const {
  return net_.exchange_seconds(static_cast<double>(bytes), 1);
}

CollectiveCost Collectives::barrier(int ranks) const {
  CollectiveCost cost;
  cost.rounds = log2_ceil(ranks);
  cost.seconds = static_cast<double>(cost.rounds) * step(0);
  cost.algorithm = "dissemination";
  return cost;
}

CollectiveCost Collectives::broadcast(int ranks, std::uint64_t bytes) const {
  CollectiveCost cost;
  cost.rounds = log2_ceil(ranks);
  cost.seconds = static_cast<double>(cost.rounds) * step(bytes);
  cost.wire_bytes_per_rank = static_cast<double>(bytes);
  cost.algorithm = "binomial";
  return cost;
}

CollectiveCost Collectives::reduce(int ranks, std::uint64_t bytes) const {
  CollectiveCost cost = broadcast(ranks, bytes);
  cost.algorithm = "binomial-reduce";
  return cost;
}

CollectiveCost Collectives::allreduce(int ranks, std::uint64_t bytes) const {
  const int rounds_rd = log2_ceil(ranks);
  const double t_recursive = static_cast<double>(rounds_rd) * step(bytes);

  CollectiveCost cost;
  if (ranks == 1) {
    cost.algorithm = "local";
    return cost;
  }
  // Ring: reduce-scatter then allgather, 2(p-1) steps of bytes/p each.
  const double chunk = static_cast<double>(bytes) / ranks;
  const int rounds_ring = 2 * (ranks - 1);
  const double t_ring =
      static_cast<double>(rounds_ring) *
      net_.exchange_seconds(chunk, 1);

  if (t_recursive <= t_ring) {
    cost.seconds = t_recursive;
    cost.rounds = rounds_rd;
    cost.wire_bytes_per_rank = static_cast<double>(bytes) * rounds_rd;
    cost.algorithm = "recursive-doubling";
  } else {
    cost.seconds = t_ring;
    cost.rounds = rounds_ring;
    cost.wire_bytes_per_rank = 2.0 * static_cast<double>(ranks - 1) * chunk;
    cost.algorithm = "ring";
  }
  return cost;
}

CollectiveCost Collectives::allgather(int ranks, std::uint64_t bytes_per_rank) const {
  CollectiveCost cost;
  if (ranks == 1) {
    cost.algorithm = "local";
    return cost;
  }
  cost.rounds = ranks - 1;
  cost.seconds = static_cast<double>(cost.rounds) *
                 step(bytes_per_rank);
  cost.wire_bytes_per_rank =
      static_cast<double>(ranks - 1) * static_cast<double>(bytes_per_rank);
  cost.algorithm = "ring";
  return cost;
}

CollectiveCost Collectives::alltoall(int ranks, std::uint64_t bytes_per_rank) const {
  CollectiveCost cost;
  if (ranks == 1) {
    cost.algorithm = "local";
    return cost;
  }
  const double chunk = static_cast<double>(bytes_per_rank) / ranks;
  cost.rounds = ranks - 1;
  cost.seconds = static_cast<double>(cost.rounds) * net_.exchange_seconds(chunk, 1);
  cost.wire_bytes_per_rank = static_cast<double>(ranks - 1) * chunk;
  cost.algorithm = "pairwise";
  return cost;
}

}  // namespace knl::cluster
