// Cray Aries-class interconnect model (the paper's testbed network,
// §III-A: "compute nodes are connected via Cray's proprietary Aries
// interconnect").
//
// A deliberately simple alpha-beta model: a transfer of B bytes split into
// M messages costs  M*alpha + B/beta  per node, with an optional
// all-to-all contention factor. That is all the multi-node guidance of the
// paper's §IV-C needs — the question there is where computation time versus
// per-node footprint trade off, not network microstructure.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace knl::cluster {

struct InterconnectConfig {
  /// Per-message latency (Aries ~1.3 us MPI latency).
  double alpha_us = 1.3;
  /// Per-node injection bandwidth (Aries ~10 GB/s effective).
  double beta_gbs = 10.0;
  /// Effective bandwidth share under all-to-all traffic (global links).
  double alltoall_efficiency = 0.6;
};

class Interconnect {
 public:
  explicit Interconnect(InterconnectConfig config = {}) : config_(config) {
    if (config_.alpha_us < 0.0 || config_.beta_gbs <= 0.0 ||
        config_.alltoall_efficiency <= 0.0 || config_.alltoall_efficiency > 1.0) {
      throw std::invalid_argument("Interconnect: invalid configuration");
    }
  }

  [[nodiscard]] const InterconnectConfig& config() const noexcept { return config_; }

  /// Time for each node to exchange `bytes_per_node` with neighbours in
  /// `messages` point-to-point messages (halo-style traffic).
  [[nodiscard]] double exchange_seconds(double bytes_per_node, int messages) const {
    if (bytes_per_node < 0.0 || messages < 0) {
      throw std::invalid_argument("exchange_seconds: negative traffic");
    }
    return static_cast<double>(messages) * config_.alpha_us * 1e-6 +
           bytes_per_node / (config_.beta_gbs * 1e9);
  }

  /// Time for an all-to-all of `bytes_per_node` across `nodes` nodes.
  [[nodiscard]] double alltoall_seconds(double bytes_per_node, int nodes) const {
    if (nodes < 1) throw std::invalid_argument("alltoall_seconds: need >= 1 node");
    if (nodes == 1) return 0.0;
    return static_cast<double>(nodes - 1) * config_.alpha_us * 1e-6 +
           bytes_per_node / (config_.beta_gbs * 1e9 * config_.alltoall_efficiency);
  }

 private:
  InterconnectConfig config_;
};

}  // namespace knl::cluster
