// Multi-node execution model + capacity planner.
//
// Paper §IV-C: "If the application has good parallel efficiency across
// multi-nodes, with enough compute nodes, the optimal setup is to decompose
// the problem so that each compute node is assigned a sub-problem that has
// a size close to the HBM capacity." This module makes that guidance
// executable: strong-scale a problem over an Aries-connected cluster of
// simulated KNL nodes and find the node count / memory configuration with
// the best modelled time (and report the per-node footprint that wins).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/collectives.hpp"
#include "cluster/interconnect.hpp"
#include "core/machine.hpp"
#include "workloads/workload.hpp"

namespace knl::cluster {

/// Builds the per-node workload for a given per-node problem size.
using NodeWorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(std::uint64_t bytes)>;

/// Communication volume per node as a function of the decomposition.
struct CommVolume {
  double bytes_per_node = 0.0;
  int messages = 0;
  bool alltoall = false;  ///< all-to-all (BFS/GUPS) vs neighbour halo (FE)
  /// Collective operations on the critical path (e.g. CG's dot-product
  /// allreduces), priced through the Collectives library.
  int allreduce_count = 0;
  std::uint64_t allreduce_bytes = 8;
};
using CommModel = std::function<CommVolume(std::uint64_t total_bytes, int nodes)>;

/// Built-in communication models for the bundled workloads.
namespace comm {
/// 3D halo exchange (MiniFE-style FE): surface-to-volume scaling,
/// 6 neighbour messages per node per iteration, `iterations` rounds.
[[nodiscard]] CommModel halo3d(int iterations);
/// MiniFE's full CG communication: halo exchange plus two 8-byte
/// allreduces (the dot products) per iteration.
[[nodiscard]] CommModel minife_cg(int iterations);
/// Frontier all-to-all per BFS level (Graph500-style), `levels` rounds with
/// a `traffic_fraction` of the node's data crossing the network.
[[nodiscard]] CommModel alltoall(double traffic_fraction, int rounds);
/// Fully replicated data (XSBench): no steady-state communication.
[[nodiscard]] CommModel none();
}  // namespace comm

struct ScalingPoint {
  int nodes = 0;
  std::uint64_t per_node_bytes = 0;
  double node_seconds = 0.0;  ///< slowest node's computation
  double comm_seconds = 0.0;
  double total_seconds = 0.0;
  bool feasible = false;
  std::string note;
};

class ClusterMachine {
 public:
  explicit ClusterMachine(MachineConfig node_config = MachineConfig::knl7210(),
                          InterconnectConfig net = {});

  [[nodiscard]] const Machine& node() const noexcept { return node_; }

  /// Strong scaling: split `total_bytes` evenly over `nodes`, run the
  /// per-node workload under `run_config`, add communication.
  [[nodiscard]] ScalingPoint run_strong(const NodeWorkloadFactory& factory,
                                        std::uint64_t total_bytes, int nodes,
                                        const RunConfig& run_config,
                                        const CommModel& comm) const;

  /// Sweep node counts; returns one point per count (infeasible points
  /// carry the reason — e.g. HBM binding with per-node size > 16 GB).
  [[nodiscard]] std::vector<ScalingPoint> strong_scaling(
      const NodeWorkloadFactory& factory, std::uint64_t total_bytes,
      const std::vector<int>& node_counts, const RunConfig& run_config,
      const CommModel& comm) const;

 private:
  Machine node_;
  Interconnect net_;
  Collectives collectives_;
};

struct CapacityPlan {
  int nodes = 0;
  MemConfig config = MemConfig::DRAM;
  ScalingPoint point;
  /// Paper §IV-C heuristic satisfied: per-node footprint within MCDRAM.
  bool fits_hbm_per_node = false;
};

/// Search node counts x memory configs for the fastest feasible setup.
class CapacityPlanner {
 public:
  explicit CapacityPlanner(const ClusterMachine& cluster) : cluster_(cluster) {}

  [[nodiscard]] CapacityPlan plan(const NodeWorkloadFactory& factory,
                                  std::uint64_t total_bytes,
                                  const std::vector<int>& node_counts, int threads,
                                  const CommModel& comm) const;

 private:
  const ClusterMachine& cluster_;
};

}  // namespace knl::cluster
