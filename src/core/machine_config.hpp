// Aggregate configuration of the simulated node.
#pragma once

#include <cstdint>

#include <string>

#include "sim/knl_params.hpp"
#include "sim/physical_memory.hpp"
#include "sim/timing_model.hpp"
#include "sim/topology.hpp"

namespace knl {

/// Version of the machine-profile schema: the set of calibrated fields a
/// MachineConfig carries and the order fingerprint() mixes them in. Bump it
/// whenever a field is added, removed, or re-interpreted — the version is
/// part of the fingerprint, so every cached sweep result and persisted
/// cache file keyed on the old schema misses instead of silently serving a
/// stale answer for a profile whose raw bytes happen to collide.
inline constexpr int kMachineSchemaVersion = 2;

/// Everything needed to instantiate a simulated KNL-class node. Defaults
/// reproduce the paper's testbed (KNL 7210, 96 GB DDR4 + 16 GB MCDRAM,
/// quadrant cluster mode).
struct MachineConfig {
  /// Schema version fingerprinted ahead of every parameter (see
  /// kMachineSchemaVersion). A field, not a constant, so tests can prove
  /// the invalidation path without editing the header.
  int schema_version = kMachineSchemaVersion;

  sim::TimingConfig timing = {};
  sim::PhysicalMemoryConfig physical = {};

  /// Declared memory topology (sim/topology.hpp). Empty tiers (the default)
  /// mean "derived": resolved_topology() synthesizes the canonical two-tier
  /// hierarchy from the timing view, so existing code that hand-tweaks
  /// `timing` after construction keeps working untouched. Multi-tier
  /// machines (machine files, xeon_max(), knl_nvm()) declare it explicitly;
  /// declared topologies must stay in sync with the timing view (validate()
  /// cross-checks the fast and DRAM tiers).
  sim::MemoryTopology topology = {};

  /// True when `topology` was declared (non-empty tier list) rather than
  /// derived from the timing view.
  [[nodiscard]] bool has_declared_topology() const noexcept {
    return !topology.tiers.empty();
  }

  /// The effective topology: the declared one when present, else the
  /// canonical two-tier derivation from `timing` (MCDRAM cache-capable over
  /// DDR4, the paper testbed shape).
  [[nodiscard]] sim::MemoryTopology resolved_topology() const;

  /// Sanity-check invariants (capacities match between the two views,
  /// parameters positive, declared topology consistent with the timing
  /// view). Throws std::invalid_argument (or knl::Error CorruptInput from
  /// topology validation) on violation.
  void validate() const;

  /// Content hash (FNV-1a) of every calibrated parameter in both the timing
  /// and physical views. Two configs with equal fingerprints produce
  /// bit-identical simulation results, so the sweep memoization cache
  /// (report/sweep.hpp) keys on this — entries never leak between, say,
  /// knl7210() and knl7210_equal_latency() machines.
  ///
  /// The topology is mixed in only when it differs from the canonical
  /// two-tier derivation: a declaration equal to the derivation adds zero
  /// information (the resolved topology is unchanged), so the mapping stays
  /// injective and the historical KNL fingerprint — embedded in every golden
  /// artifact — is preserved, while any real topology change (extra tier,
  /// renamed tier, moved controller range, cache_front toggle) changes the
  /// fingerprint. Asserted by tests/core/fingerprint_topology_test.cpp.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Overwrite the declared topology and synchronize the timing and
  /// physical views with it (fast tier -> hbm, DRAM tier -> ddr, cache-front
  /// capacity -> mcdram cache capacity). The topology is validated first.
  void apply_topology(const sim::MemoryTopology& declared);

  /// Build a config from a machine file (sim::MemoryTopology machine-file
  /// format): parses, validates, and applies the declared topology onto the
  /// KNL base (core counts and cache hierarchy stay at testbed defaults
  /// unless the caller adjusts them afterwards).
  [[nodiscard]] static MachineConfig from_machine_file(const std::string& text);

  /// The paper's testbed configuration.
  [[nodiscard]] static MachineConfig knl7210();

  /// Xeon Max / Sapphire Rapids HBM node (Aurora-class): 64 GiB HBM2e over
  /// 512 GiB DDR5, 56 cores with 2-way SMT. Declared topology.
  [[nodiscard]] static MachineConfig xeon_max();

  /// The KNL testbed plus a 512 GiB NVM-class far tier behind DDR (the
  /// NUMA-emulation paper's spill path). Declared three-tier topology.
  [[nodiscard]] static MachineConfig knl_nvm();

  /// A machine with MCDRAM-like latency *equal* to DDR — the ablation
  /// machine for asking "how much of the random-access penalty is latency?"
  [[nodiscard]] static MachineConfig knl7210_equal_latency();

  /// A DDR-only machine (no MCDRAM): the conventional-node baseline.
  [[nodiscard]] static MachineConfig ddr_only();

  /// SNC-4 cluster mode: sub-NUMA clustering shortens the directory walk
  /// (traffic stays within a quadrant) at the cost of exposing 8 NUMA
  /// nodes to software. Not used by the paper's testbed (quadrant mode);
  /// provided for what-if studies.
  [[nodiscard]] static MachineConfig knl7210_snc4();
};

}  // namespace knl
