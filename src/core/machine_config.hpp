// Aggregate configuration of the simulated node.
#pragma once

#include <cstdint>

#include "sim/knl_params.hpp"
#include "sim/physical_memory.hpp"
#include "sim/timing_model.hpp"

namespace knl {

/// Version of the machine-profile schema: the set of calibrated fields a
/// MachineConfig carries and the order fingerprint() mixes them in. Bump it
/// whenever a field is added, removed, or re-interpreted — the version is
/// part of the fingerprint, so every cached sweep result and persisted
/// cache file keyed on the old schema misses instead of silently serving a
/// stale answer for a profile whose raw bytes happen to collide.
inline constexpr int kMachineSchemaVersion = 2;

/// Everything needed to instantiate a simulated KNL-class node. Defaults
/// reproduce the paper's testbed (KNL 7210, 96 GB DDR4 + 16 GB MCDRAM,
/// quadrant cluster mode).
struct MachineConfig {
  /// Schema version fingerprinted ahead of every parameter (see
  /// kMachineSchemaVersion). A field, not a constant, so tests can prove
  /// the invalidation path without editing the header.
  int schema_version = kMachineSchemaVersion;

  sim::TimingConfig timing = {};
  sim::PhysicalMemoryConfig physical = {};

  /// Sanity-check invariants (capacities match between the two views,
  /// parameters positive). Throws std::invalid_argument on violation.
  void validate() const;

  /// Content hash (FNV-1a) of every calibrated parameter in both the timing
  /// and physical views. Two configs with equal fingerprints produce
  /// bit-identical simulation results, so the sweep memoization cache
  /// (report/sweep.hpp) keys on this — entries never leak between, say,
  /// knl7210() and knl7210_equal_latency() machines.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The paper's testbed configuration.
  [[nodiscard]] static MachineConfig knl7210();

  /// A machine with MCDRAM-like latency *equal* to DDR — the ablation
  /// machine for asking "how much of the random-access penalty is latency?"
  [[nodiscard]] static MachineConfig knl7210_equal_latency();

  /// A DDR-only machine (no MCDRAM): the conventional-node baseline.
  [[nodiscard]] static MachineConfig ddr_only();

  /// SNC-4 cluster mode: sub-NUMA clustering shortens the directory walk
  /// (traffic stays within a quadrant) at the cost of exposing 8 NUMA
  /// nodes to software. Not used by the paper's testbed (quadrant mode);
  /// provided for what-if studies.
  [[nodiscard]] static MachineConfig knl7210_snc4();
};

}  // namespace knl
