// Machine: the top-level simulated KNL-class node.
//
// Combines the placement substrate (simulated physical memory, page table,
// numactl-style policies) with the timing model. `run` executes one workload
// profile under one of the paper's three configurations — including the
// capacity feasibility rule the paper applies ("no measurements for HBM in
// flat mode when the problem size exceeds its capacity").
#pragma once

#include <optional>

#include "core/machine_config.hpp"
#include "core/types.hpp"
#include "mem/numa_policy.hpp"
#include "mem/numa_topology.hpp"
#include "sim/timing_model.hpp"
#include "trace/profile.hpp"

namespace knl {

/// Per-phase breakdown attached to a RunResult when requested.
struct PhaseReport {
  std::string name;
  sim::PhaseTiming timing;
};

/// Result of run_detailed: the whole-run summary plus one PhaseReport per
/// profile phase, in profile order.
struct DetailedRunResult {
  RunResult summary;
  std::vector<PhaseReport> phases;
};

class Machine {
 public:
  explicit Machine(MachineConfig config = MachineConfig::knl7210());

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sim::TimingModel& timing() const noexcept { return timing_; }

  /// The resolved declared memory topology this machine runs on (the
  /// canonical two-tier derivation unless the config declared one).
  [[nodiscard]] const sim::MemoryTopology& memory_topology() const noexcept {
    return topology_;
  }

  /// True when runs are resolved through the N-tier waterfall path (three
  /// or more declared tiers) rather than the two-node legacy path, which is
  /// kept bit-identical for every historical machine.
  [[nodiscard]] bool tiered() const noexcept { return topology_.tier_count() > 2; }

  /// NUMA topology the OS would expose under the given configuration.
  [[nodiscard]] mem::NumaTopology topology(MemConfig config) const;

  /// Human-readable model card: every calibrated parameter and the paper
  /// anchor it encodes (for experiment logs and reproducibility records).
  [[nodiscard]] std::string describe() const;

  /// Run `profile` under the paper's named configuration. Placement is
  /// coarse-grained (all data bound the same way), matching the paper §III-C.
  [[nodiscard]] RunResult run(const trace::AccessProfile& profile,
                              const RunConfig& run_config) const;

  /// Same, with the per-phase breakdown.
  [[nodiscard]] DetailedRunResult run_detailed(const trace::AccessProfile& profile,
                                               const RunConfig& run_config) const;

  /// Flat-mode run under an arbitrary numactl-style placement (interleave /
  /// preferred) — the paper's §IV-C suggestion for problems larger than HBM.
  [[nodiscard]] RunResult run_flat_placement(const trace::AccessProfile& profile,
                                             int threads, Placement placement) const;

  /// Hybrid-mode run (paper §II): `cache_fraction` of MCDRAM serves as cache
  /// for DDR while the rest is a small flat HBM node holding the hottest
  /// `flat_hbm_bytes` of the footprint.
  [[nodiscard]] RunResult run_hybrid(const trace::AccessProfile& profile, int threads,
                                     double cache_fraction,
                                     std::uint64_t flat_hbm_bytes) const;

 private:
  /// Resolve placement: returns the HBM page fraction (two-node path) or
  /// the per-tier fractions (tiered path), or an error string when the
  /// configuration cannot hold the resident set.
  struct Resolved {
    bool ok = false;
    std::string error;
    double hbm_fraction = 0.0;
    /// Per-tier resident fractions; non-empty only on the tiered path.
    std::vector<double> fractions;
  };
  [[nodiscard]] Resolved resolve_placement(std::uint64_t resident_bytes,
                                           MemConfig config) const;
  [[nodiscard]] Resolved resolve_flat(std::uint64_t resident_bytes,
                                      Placement placement) const;

  /// Tiered-path resolvers: waterfall from `preferred` down the backing
  /// chain (strict = numactl membind, no spill) and round-robin interleave
  /// across every tier.
  [[nodiscard]] Resolved resolve_waterfall(std::uint64_t resident_bytes, int preferred,
                                           bool strict) const;
  [[nodiscard]] Resolved resolve_interleave(std::uint64_t resident_bytes) const;

  [[nodiscard]] DetailedRunResult run_impl(const trace::AccessProfile& profile,
                                           const RunConfig& run_config,
                                           double hbm_fraction, bool want_phases) const;
  [[nodiscard]] DetailedRunResult run_impl_tiered(const trace::AccessProfile& profile,
                                                  const RunConfig& run_config,
                                                  const std::vector<double>& fractions,
                                                  bool want_phases) const;

  MachineConfig config_;
  sim::TimingModel timing_;
  sim::MemoryTopology topology_;
};

}  // namespace knl
