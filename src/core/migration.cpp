#include "core/migration.hpp"

#include <algorithm>
#include <stdexcept>

namespace knl {

MigrationOutcome MigrationRuntime::run(const trace::AccessProfile& profile, int threads,
                                       const MigrationConfig& config) const {
  if (config.interval_seconds <= 0.0 || config.copy_bw_gbs <= 0.0) {
    throw std::invalid_argument("MigrationRuntime: interval and copy bandwidth must be positive");
  }
  if (config.detection_lag < 0.0 || config.detection_lag > 1.0 ||
      config.churn_fraction < 0.0 || config.churn_fraction > 1.0) {
    throw std::invalid_argument("MigrationRuntime: fractions must be in [0,1]");
  }

  MigrationOutcome outcome;

  // The daemon converges to the optimizer's placement: hottest structures
  // in MCDRAM up to capacity.
  const PlanOutcome plan = placer_.optimize(profile, threads);
  const RunResult all_ddr = placer_.run_plan(profile, threads, {});
  if (!plan.result.feasible || !all_ddr.feasible) {
    outcome.result.feasible = false;
    outcome.result.infeasible_reason = "migration: underlying placement infeasible";
    return outcome;
  }
  outcome.hot_bytes = plan.hbm_bytes;
  outcome.static_plan_seconds = plan.result.seconds;
  outcome.steady_state_seconds = plan.result.seconds;

  // Detection lag: that fraction of the run executes at all-DDR speed.
  outcome.lag_penalty_seconds =
      config.detection_lag * (all_ddr.seconds - plan.result.seconds);

  // Migration traffic: the initial promotion moves the whole hot set once;
  // churn re-moves a slice every interval for the duration of the run.
  const double base_seconds = outcome.steady_state_seconds + outcome.lag_penalty_seconds;
  const double intervals = std::max(1.0, base_seconds / config.interval_seconds);
  const double moved_bytes =
      static_cast<double>(outcome.hot_bytes) *
      (1.0 + config.churn_fraction * (intervals - 1.0));
  outcome.migration_seconds = moved_bytes / (config.copy_bw_gbs * 1e9);

  outcome.result = plan.result;
  outcome.result.seconds =
      base_seconds + outcome.migration_seconds;
  if (outcome.result.seconds > 0.0) {
    outcome.result.achieved_bw_gbs =
        outcome.result.bytes_from_memory / (outcome.result.seconds * 1e9);
    outcome.speedup_vs_all_ddr = all_ddr.seconds / outcome.result.seconds;
  }
  return outcome;
}

}  // namespace knl
