// Hot-page migration runtime model — the dynamic flavour of the paper's
// §VI "finer-grained approach": instead of a static per-structure plan, a
// daemon (AutoHBM / memkind's memtier style) samples page heat and migrates
// the hottest pages into MCDRAM at intervals.
//
// Model: in steady state the daemon approximates the optimizer's placement
// (hot structures resident in MCDRAM up to capacity), but pays two taxes a
// static plan does not:
//   - detection lag: a fraction of execution runs with yesterday's
//     placement (modelled as a blend with the all-DDR time);
//   - migration traffic: moved pages cross both memories through the
//     daemon, stealing bandwidth (costed at copy rate each interval).
// The result quantifies when "just migrate" approaches explicit placement
// and when its overheads eat the benefit — the decision a runtime designer
// actually faces.
#pragma once

#include <cstdint>

#include "core/machine.hpp"
#include "core/placement_plan.hpp"
#include "trace/profile.hpp"

namespace knl {

struct MigrationConfig {
  /// Daemon wake-up interval.
  double interval_seconds = 0.1;
  /// Fraction of each interval spent detecting/settling before the
  /// placement is right (0 = oracle daemon, 1 = never right).
  double detection_lag = 0.15;
  /// Bandwidth available to the migration copies (shared with the app).
  double copy_bw_gbs = 20.0;
  /// Fraction of the hot set that churns (gets re-migrated) per interval
  /// once steady state is reached.
  double churn_fraction = 0.02;
};

struct MigrationOutcome {
  RunResult result;
  double steady_state_seconds = 0.0;  ///< app time with ideal placement
  double lag_penalty_seconds = 0.0;
  double migration_seconds = 0.0;
  std::uint64_t hot_bytes = 0;        ///< resident set promoted to MCDRAM
  double speedup_vs_all_ddr = 1.0;
  /// The static fine-grained plan's time, for comparison.
  double static_plan_seconds = 0.0;
};

class MigrationRuntime {
 public:
  explicit MigrationRuntime(const Machine& machine)
      : machine_(machine), placer_(machine) {}

  [[nodiscard]] MigrationOutcome run(const trace::AccessProfile& profile, int threads,
                                     const MigrationConfig& config = {}) const;

 private:
  const Machine& machine_;
  FineGrainedPlacer placer_;
};

}  // namespace knl
