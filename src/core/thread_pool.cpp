#include "core/thread_pool.hpp"

#include <algorithm>

namespace knl::core {

std::vector<ChunkRange> split_range(std::size_t begin, std::size_t end, std::size_t grain) {
  if (grain == 0) throw std::invalid_argument("split_range: grain must be >= 1");
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  chunks.reserve((end - begin + grain - 1) / grain);
  for (std::size_t b = begin; b < end; b += grain) {
    chunks.push_back(ChunkRange{b, std::min(b + grain, end)});
  }
  return chunks;
}

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ThreadPool::enqueue(Task task) {
  const std::size_t target =
      next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool ThreadPool::acquire(std::size_t self, Task& out) {
  // Own queue first (front: submission order for cache-friendly locality)...
  {
    Worker& own = *workers_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      out = std::move(own.queue.front());
      own.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // ...then steal from the back of a sibling's.
  for (std::size_t step = 1; step < workers_.size(); ++step) {
    Worker& victim = *workers_[(self + step) % workers_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = std::move(victim.queue.back());
      victim.queue.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    Task task;
    if (acquire(index, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;  // drained: every submitted future is ready
    }
  }
}

}  // namespace knl::core
