// Bounded lock-free multi-producer queue — the epoch-result channel that
// lets ParallelReplay's serial timing reconciliation overlap the sharded
// classification phase instead of barriering on it.
//
// The algorithm is Dmitry Vyukov's bounded MPMC ring: each cell carries a
// sequence number that encodes, relative to the ring position, whether the
// cell is free for the producer of that lap or holds a value for the
// consumer. Producers claim a cell with one CAS on the head counter and
// publish with a release store of the cell sequence; the consumer observes
// values with an acquire load, so everything the producer wrote before
// push() (e.g. a shard's classification buffers) happens-before the
// consumer's use after try_pop(). No mutexes anywhere; full/empty are
// communicated by return value, never by blocking.
//
// ParallelReplay uses it single-consumer (MPSC), but pop is implemented with
// the full MPMC discipline — the cost is one uncontended CAS, and the
// structure stays reusable. T must be movable; cells are default-
// constructed up front, so T needs a cheap default constructor.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

namespace knl::core {

template <typename T>
class BoundedMpscQueue {
 public:
  /// Capacity is min_capacity rounded up to a power of two (at least 2).
  explicit BoundedMpscQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Enqueue; returns false when the ring is full (value is left intact so
  /// the caller may retry).
  [[nodiscard]] bool try_push(T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry the (new) cell.
      } else if (dif < 0) {
        return false;  // full: the cell still holds an unconsumed lap
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Enqueue, yielding while the ring is full. The replay pipeline bounds
  /// in-flight epochs so producers never actually wait more than one
  /// consumer lap.
  void push(T value) {
    while (!try_push(value)) std::this_thread::yield();
  }

  /// Dequeue into `out`; returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producer and consumer cursors on separate cache lines so concurrent
  /// pushes never false-share with the consumer's pops.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace knl::core
