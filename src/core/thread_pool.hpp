// Work-stealing thread pool — the execution substrate of the parallel sweep
// engine (report/sweep.hpp) and of any other embarrassingly-parallel grid in
// the library.
//
// Design: each worker owns a deque guarded by its own mutex. Submission
// round-robins tasks across the deques; a worker pops from the front of its
// own deque and, when that runs dry, steals from the back of a sibling's —
// the classic Chase-Lev discipline (implemented with locks, not lock-free
// buffers: sweep cells are milliseconds, so queue overhead is noise).
// Tasks are arbitrary callables; submit() returns a std::future carrying the
// task's result or exception.
//
// Destruction is graceful: the destructor stops intake, drains every queued
// task, and joins the workers — no submitted future is ever abandoned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace knl::core {

class ThreadPool {
 public:
  /// Start `threads` workers; 0 means one per hardware thread (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains all queued tasks, then joins the workers. Futures obtained from
  /// submit() are guaranteed to become ready before the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue `fn` for execution on some worker. Returns a future that
  /// yields fn's return value, or rethrows the exception fn threw.
  /// Thread-safe: any thread (including a worker) may submit.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> future = task.get_future();
    // packaged_task<R()>::operator() returns void (the result lands in the
    // shared state), so it slots directly into the type-erased queue entry.
    enqueue(Task(std::move(task)));
    return future;
  }

  /// std::thread::hardware_concurrency, clamped to at least 1 (the standard
  /// allows it to return 0 when the count is unknowable).
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  using Task = std::packaged_task<void()>;

  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
    std::thread thread;
  };

  void enqueue(Task task);
  /// Pop from our own front, else steal from a sibling's back.
  bool acquire(std::size_t self, Task& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_{0};    // round-robin submission cursor
  std::atomic<std::size_t> queued_{0};  // tasks enqueued but not yet popped
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace knl::core
