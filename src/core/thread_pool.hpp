// Work-stealing thread pool — the execution substrate of the parallel sweep
// engine (report/sweep.hpp) and of any other embarrassingly-parallel grid in
// the library.
//
// Design: each worker owns a deque guarded by its own mutex. Submission
// round-robins tasks across the deques; a worker pops from the front of its
// own deque and, when that runs dry, steals from the back of a sibling's —
// the classic Chase-Lev discipline (implemented with locks, not lock-free
// buffers: sweep cells are milliseconds, so queue overhead is noise).
// Tasks are arbitrary callables; submit() returns a std::future carrying the
// task's result or exception.
//
// Destruction is graceful: the destructor stops intake, drains every queued
// task, and joins the workers — no submitted future is ever abandoned.
//
// On top of the pool sit the data-parallel helpers used by the threaded
// workload executors (src/workloads): parallel_for / parallel_reduce over an
// index range, chunked by a caller-chosen grain. Chunk boundaries depend only
// on the range and the grain — never on the worker count — and reductions
// combine chunk results in ascending chunk order, so any floating-point
// result is bit-identical for 1, 2 or N workers (only the wall time changes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/fault/fault_injection.hpp"

namespace knl::core {

class ThreadPool {
 public:
  /// Start `threads` workers; 0 means one per hardware thread (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains all queued tasks, then joins the workers. Futures obtained from
  /// submit() are guaranteed to become ready before the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue `fn` for execution on some worker. Returns a future that
  /// yields fn's return value, or rethrows the exception fn threw.
  /// Thread-safe: any thread (including a worker) may submit.
  ///
  /// Task dispatch is a fault-injection site ("thread-pool-dispatch",
  /// keyed by this pool's submission sequence number — deterministic,
  /// since submission order is the caller's program order). An injected
  /// fault fires inside the task wrapper, so it lands in the returned
  /// future, never in a worker loop; when no plan is armed the check is
  /// one relaxed atomic load.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    const std::uint64_t seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
    std::packaged_task<R()> task(
        [fn = std::forward<F>(fn), seq]() mutable -> R {
          fault::maybe_inject(fault::kSiteThreadPoolDispatch, seq);
          return fn();
        });
    std::future<R> future = task.get_future();
    // packaged_task<R()>::operator() returns void (the result lands in the
    // shared state), so it slots directly into the type-erased queue entry.
    enqueue(Task(std::move(task)));
    return future;
  }

  /// std::thread::hardware_concurrency, clamped to at least 1 (the standard
  /// allows it to return 0 when the count is unknowable).
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  using Task = std::packaged_task<void()>;

  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
    std::thread thread;
  };

  void enqueue(Task task);
  /// Pop from our own front, else steal from a sibling's back.
  bool acquire(std::size_t self, Task& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> submit_seq_{0};  // fault-injection dispatch key
  std::atomic<std::size_t> next_{0};    // round-robin submission cursor
  std::atomic<std::size_t> queued_{0};  // tasks enqueued but not yet popped
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

/// One half-open chunk of an index range, as produced by split_range.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Deterministic chunking of [begin, end): consecutive chunks of `grain`
/// indices each (the last chunk holds the remainder). The decomposition is a
/// pure function of the range and the grain, which is the property every
/// chunk-ordered reduction below relies on for worker-count independence.
/// Throws std::invalid_argument for grain == 0; an empty range yields no
/// chunks.
[[nodiscard]] std::vector<ChunkRange> split_range(std::size_t begin, std::size_t end,
                                                  std::size_t grain);

/// Run `body(chunk_begin, chunk_end)` over every chunk of [begin, end) on the
/// pool, blocking until all chunks finish. A single-chunk range runs inline on
/// the calling thread (no pool round-trip). If any chunk throws, every other
/// chunk still runs to completion and the exception of the lowest-indexed
/// failing chunk is rethrown — deterministic for any worker count.
///
/// Call from outside the pool only: the caller blocks on chunk futures, so a
/// worker invoking this on its own pool can deadlock.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  const std::vector<ChunkRange> chunks = split_range(begin, end, grain);
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    body(chunks[0].begin, chunks[0].end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (const ChunkRange& chunk : chunks) {
    futures.push_back(pool.submit([&body, chunk] { body(chunk.begin, chunk.end); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Deterministic chunked reduction: evaluates `map(chunk_begin, chunk_end)`
/// for every chunk on the pool, then folds the per-chunk results with
/// `combine` in ascending chunk order starting from `init`. Because both the
/// chunk boundaries and the combine order are independent of the worker
/// count, floating-point reductions are bit-identical for any pool size.
/// Exceptions behave as in parallel_for.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                                std::size_t grain, T init, Map&& map, Combine&& combine) {
  const std::vector<ChunkRange> chunks = split_range(begin, end, grain);
  if (chunks.empty()) return init;
  if (chunks.size() == 1) {
    return combine(std::move(init), map(chunks[0].begin, chunks[0].end));
  }
  std::vector<std::future<T>> futures;
  futures.reserve(chunks.size());
  for (const ChunkRange& chunk : chunks) {
    futures.push_back(pool.submit([&map, chunk] { return map(chunk.begin, chunk.end); }));
  }
  T acc = std::move(init);
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      acc = combine(std::move(acc), future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return acc;
}

}  // namespace knl::core
