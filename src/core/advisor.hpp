// Advisor: the paper's contribution #6 as an executable API — "a guideline
// for setting correct expectation for performance improvement on systems
// with 3D-stacked high-bandwidth memories".
//
// Given an application characterization (the three factors the paper
// identifies: access pattern, problem size, threading), the advisor runs the
// machine model over the candidate configurations and returns the ranked
// recommendation with predicted speedups and the paper-style rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "trace/profile.hpp"

namespace knl {

/// Application characterization, as a user would describe their code.
struct AppCharacteristics {
  std::string name = "app";
  /// Fraction of memory traffic that is regular/streaming (1 = STREAM-like,
  /// 0 = GUPS-like).
  double regular_fraction = 1.0;
  /// Resident problem size in bytes.
  std::uint64_t footprint_bytes = 0;
  /// Flops per byte of memory traffic (arithmetic intensity).
  double flops_per_byte = 0.0;
  /// Whether the code scales with hardware threads (some codes cap at one
  /// thread per core, like the paper's DGEMM run that failed at 256).
  int max_threads = 256;
  /// Average useful bytes per random access (gather granularity).
  std::uint64_t random_granule_bytes = 8;
};

struct Recommendation {
  MemConfig config = MemConfig::DRAM;
  int threads = 64;
  double predicted_speedup_vs_dram64 = 1.0;  ///< vs DRAM @ 64 threads.
  bool feasible = true;
  std::string rationale;
};

struct Advice {
  Recommendation best;
  /// All evaluated candidates, best first.
  std::vector<Recommendation> ranked;
  /// Paper-style qualitative classification: "bandwidth-bound",
  /// "latency-bound", or "compute-bound".
  std::string classification;
};

class Advisor {
 public:
  explicit Advisor(const Machine& machine) : machine_(machine) {}

  /// Evaluate all memory configs x thread counts and rank them.
  [[nodiscard]] Advice advise(const AppCharacteristics& app) const;

  /// Build the synthetic profile the advisor evaluates (exposed for tests).
  [[nodiscard]] static trace::AccessProfile synthesize(const AppCharacteristics& app);

 private:
  const Machine& machine_;
};

}  // namespace knl
