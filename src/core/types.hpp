// Core vocabulary types shared across the knlmem library.
//
// These model the configuration space the paper explores: the MCDRAM memory
// mode (flat / cache / hybrid), the coarse-grained data placement chosen via
// numactl, and the execution setup (OpenMP-style thread count on a 64-core,
// 4-SMT node).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace knl {

/// Byte-count convenience literals (binary units, matching the 16 GiB
/// MCDRAM / 96 GiB DDR capacities the paper reports).
inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// Decimal gigabyte, used when mirroring the paper's axis labels (the paper
/// quotes problem sizes in decimal GB).
inline constexpr double GB = 1e9;

/// How MCDRAM is configured at boot (paper §II).
enum class MemoryMode : std::uint8_t {
  Flat,    ///< MCDRAM exposed as a second NUMA node next to DDR.
  Cache,   ///< MCDRAM is a hardware-managed direct-mapped cache for DDR.
  Hybrid,  ///< Part flat, part cache (partition ratio set separately).
};

/// Identifier of a physical memory node in flat/hybrid mode.
/// Matches the NUMA node numbering of the paper's testbed (Table II):
/// node 0 = DDR (96 GB), node 1 = MCDRAM (16 GB).
enum class MemNode : std::uint8_t {
  DDR = 0,
  HBM = 1,
};

/// Coarse-grained placement policy, the numactl-level knob the paper uses.
enum class Placement : std::uint8_t {
  DDR,         ///< numactl --membind=0 : everything in DDR ("DRAM" config).
  HBM,         ///< numactl --membind=1 : everything in MCDRAM ("HBM" config).
  Interleave,  ///< numactl --interleave=0,1 : page round-robin.
  Preferred,   ///< numactl --preferred=1 : HBM until full, then DDR.
};

/// The three named experiment configurations of paper §III-C.
enum class MemConfig : std::uint8_t {
  DRAM,       ///< Flat mode, membind to DDR.
  HBM,        ///< Flat mode, membind to MCDRAM.
  CacheMode,  ///< Cache mode (MCDRAM = last-level cache for DDR).
};

/// Execution setup for one measurement: thread count and memory config.
struct RunConfig {
  MemConfig config = MemConfig::DRAM;
  /// Total OpenMP-style threads. The paper uses 64 (1 HT/core) by default
  /// and sweeps 64..256 in Fig. 6.
  int threads = 64;
  /// Fraction of MCDRAM configured as cache in Hybrid mode (0 = all flat,
  /// 1 = all cache). Only meaningful for hybrid-mode experiments.
  double hybrid_cache_fraction = 0.0;

  [[nodiscard]] bool valid() const noexcept { return threads > 0; }
};

/// Result of simulating one workload execution.
struct RunResult {
  double seconds = 0.0;          ///< Modelled execution time.
  double bytes_from_memory = 0;  ///< Traffic that reached DRAM/MCDRAM.
  double flops = 0.0;            ///< Floating point operations performed.
  double avg_latency_ns = 0.0;   ///< Traffic-weighted effective mem latency.
  double achieved_bw_gbs = 0.0;  ///< Traffic / time, in GB/s (decimal).
  double mcdram_hit_rate = 0.0;  ///< Cache-mode hit rate (1.0 in flat HBM).
  bool feasible = true;          ///< False if footprint exceeds capacity.
  std::string infeasible_reason;
};

[[nodiscard]] std::string to_string(MemoryMode mode);
[[nodiscard]] std::string to_string(MemNode node);
[[nodiscard]] std::string to_string(Placement placement);
[[nodiscard]] std::string to_string(MemConfig config);

std::ostream& operator<<(std::ostream& os, MemoryMode mode);
std::ostream& operator<<(std::ostream& os, MemNode node);
std::ostream& operator<<(std::ostream& os, Placement placement);
std::ostream& operator<<(std::ostream& os, MemConfig config);

}  // namespace knl
