#include "core/machine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/page_table.hpp"
#include "sim/physical_memory.hpp"

namespace knl {

Machine::Machine(MachineConfig config) : config_(config), timing_(config.timing) {
  config_.validate();
  topology_ = config_.resolved_topology();
}

std::string Machine::describe() const {
  const auto& t = config_.timing;
  std::ostringstream os;
  os << "simulated KNL-class node (paper testbed: KNL 7210, quadrant mode)\n";
  os << "  cores: " << t.cores << " @ " << params::kClockGHz << " GHz, "
     << t.smt_per_core << " HT/core\n";
  os << "  L1: " << params::kL1Bytes / KiB << " KiB/core; L2: "
     << params::kL2Bytes / MiB << " MiB/tile x " << params::kTiles << " tiles\n";
  os << "  DDR:    " << t.ddr.capacity_bytes / GiB << " GiB, stream "
     << t.ddr.stream_bw_gbs << " GB/s (paper Fig. 2), random " << t.ddr.random_bw_gbs
     << " GB/s, idle " << t.ddr.idle_latency_ns << " ns (paper SIV-A)\n";
  os << "  MCDRAM: " << t.hbm.capacity_bytes / GiB << " GiB, stream cap "
     << t.hbm.stream_bw_gbs << " GB/s (Fig. 5 @4HT), random " << t.hbm.random_bw_gbs
     << " GB/s, idle " << t.hbm.idle_latency_ns << " ns (paper SIV-A)\n";
  os << "  MLP: seq " << t.seq_mlp_per_core << " lines/core (330 GB/s anchor), "
     << "random " << t.rand_mlp_per_thread << " lines/thread\n";
  os << "  MCDRAM cache: direct-mapped " << t.mcdram.capacity_bytes / GiB
     << " GiB, sweep knee " << t.mcdram.sweep_knee << " sharpness "
     << t.mcdram.sweep_sharpness << " (cache-mode STREAM anchors)\n";
  os << "  TLB: " << t.tlb.entries << " x " << t.tlb.page_bytes / MiB
     << " MiB pages (Fig. 3 rise at 128 MiB)\n";
  os << "  topology: " << topology_.name << ", " << topology_.tier_count()
     << " tiers (" << topology_.tier_names() << ")\n";
  for (std::size_t i = 0; i < topology_.tier_count(); ++i) {
    const sim::MemoryTier& tier = topology_.tier(i);
    os << "    [" << i << "] " << tier.name << " (" << sim::to_string(tier.kind)
       << "): " << tier.params.capacity_bytes / GiB << " GiB, stream "
       << tier.params.stream_bw_gbs << " GB/s, idle " << tier.params.idle_latency_ns
       << " ns, controllers " << tier.controllers_begin << ".." << tier.controllers_end;
    if (tier.backing != -1) {
      os << ", spills to " << topology_.tier(static_cast<std::size_t>(tier.backing)).name;
    }
    if (tier.cache_front) os << ", cache-capable";
    os << "\n";
  }
  return os.str();
}

mem::NumaTopology Machine::topology(MemConfig config) const {
  const MemoryMode mode =
      config == MemConfig::CacheMode ? MemoryMode::Cache : MemoryMode::Flat;
  return mem::NumaTopology(mode, 0.5, config_.timing.ddr.capacity_bytes,
                           config_.timing.hbm.capacity_bytes);
}

Machine::Resolved Machine::resolve_waterfall(std::uint64_t resident_bytes, int preferred,
                                             bool strict) const {
  const sim::TierPlacement placed =
      sim::place_waterfall(topology_, resident_bytes, preferred, strict);
  Resolved resolved;
  if (!placed.ok) {
    resolved.error = placed.error;
    return resolved;
  }
  resolved.ok = true;
  resolved.fractions.assign(topology_.tier_count(), 0.0);
  for (std::size_t i = 0; i < topology_.tier_count(); ++i) {
    resolved.fractions[i] = placed.fraction_in(static_cast<int>(i));
  }
  // Empty resident sets place nowhere; charge the preferred tier so the
  // fractions still form a distribution for the timing model.
  if (resident_bytes == 0) {
    resolved.fractions[static_cast<std::size_t>(preferred)] = 1.0;
  }
  resolved.hbm_fraction = resolved.fractions[static_cast<std::size_t>(
      topology_.fast_tier())];
  return resolved;
}

Machine::Resolved Machine::resolve_interleave(std::uint64_t resident_bytes) const {
  // numactl --interleave over every tier: pages round-robin across the
  // tiers; a tier that fills drops out and the survivors keep rotating.
  // Byte-granular equivalent: repeatedly split the remainder evenly over
  // the tiers with free capacity.
  const std::size_t n = topology_.tier_count();
  std::vector<std::uint64_t> taken(n, 0);
  std::uint64_t remaining = resident_bytes;
  while (remaining > 0) {
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i] < topology_.tier(i).params.capacity_bytes) open.push_back(i);
    }
    if (open.empty()) break;
    const std::uint64_t base = remaining / open.size();
    std::uint64_t extra = remaining % open.size();
    std::uint64_t absorbed = 0;
    for (const std::size_t i : open) {
      std::uint64_t want = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      const std::uint64_t free_bytes = topology_.tier(i).params.capacity_bytes - taken[i];
      const std::uint64_t got = std::min(want, free_bytes);
      taken[i] += got;
      absorbed += got;
    }
    if (absorbed == 0) break;
    remaining -= absorbed;
  }
  Resolved resolved;
  if (remaining > 0) {
    resolved.error = "interleave: resident set exceeds total memory capacity";
    return resolved;
  }
  resolved.ok = true;
  resolved.fractions.assign(n, 0.0);
  if (resident_bytes == 0) {
    resolved.fractions[static_cast<std::size_t>(topology_.dram_tier())] = 1.0;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      resolved.fractions[i] =
          static_cast<double>(taken[i]) / static_cast<double>(resident_bytes);
    }
  }
  resolved.hbm_fraction = resolved.fractions[static_cast<std::size_t>(
      topology_.fast_tier())];
  return resolved;
}

Machine::Resolved Machine::resolve_placement(std::uint64_t resident_bytes,
                                             MemConfig config) const {
  if (tiered()) {
    // N-tier path: membind to the fast tier is strict (numactl semantics);
    // DRAM and cache-mode residency waterfalls down the backing chain
    // (DDR overflow demotes to NVM instead of failing).
    if (config == MemConfig::HBM) {
      return resolve_waterfall(resident_bytes, topology_.fast_tier(), /*strict=*/true);
    }
    return resolve_waterfall(resident_bytes, topology_.dram_tier(), /*strict=*/false);
  }
  // Exercise the real placement machinery on a fresh process image so
  // capacity failures surface exactly as numactl would make them.
  sim::PhysicalMemory phys(config_.physical);
  sim::PageTable pt(phys.page_bytes());

  const mem::NumaPolicy policy = config == MemConfig::HBM
                                     ? mem::NumaPolicy::membind(MemNode::HBM)
                                     : mem::NumaPolicy::membind(MemNode::DDR);
  const auto placed = policy.place(phys.page_bytes(), resident_bytes, phys, pt);
  Resolved resolved;
  if (!placed.ok) {
    resolved.error = placed.error;
    return resolved;
  }
  resolved.ok = true;
  resolved.hbm_fraction = placed.hbm_fraction();
  return resolved;
}

Machine::Resolved Machine::resolve_flat(std::uint64_t resident_bytes,
                                        Placement placement) const {
  if (tiered()) {
    switch (placement) {
      case Placement::DDR:
        return resolve_waterfall(resident_bytes, topology_.dram_tier(), /*strict=*/false);
      case Placement::HBM:
        return resolve_waterfall(resident_bytes, topology_.fast_tier(), /*strict=*/true);
      case Placement::Preferred:
        return resolve_waterfall(resident_bytes, topology_.fast_tier(), /*strict=*/false);
      case Placement::Interleave:
        return resolve_interleave(resident_bytes);
    }
  }
  sim::PhysicalMemory phys(config_.physical);
  sim::PageTable pt(phys.page_bytes());
  mem::NumaPolicy policy = mem::NumaPolicy::local();
  switch (placement) {
    case Placement::DDR: policy = mem::NumaPolicy::membind(MemNode::DDR); break;
    case Placement::HBM: policy = mem::NumaPolicy::membind(MemNode::HBM); break;
    case Placement::Preferred: policy = mem::NumaPolicy::preferred(MemNode::HBM); break;
    case Placement::Interleave: policy = mem::NumaPolicy::interleave(); break;
  }
  const auto placed = policy.place(phys.page_bytes(), resident_bytes, phys, pt);
  Resolved resolved;
  if (!placed.ok) {
    resolved.error = placed.error;
    return resolved;
  }
  resolved.ok = true;
  resolved.hbm_fraction = placed.hbm_fraction();
  return resolved;
}

DetailedRunResult Machine::run_impl(const trace::AccessProfile& profile,
                                    const RunConfig& run_config, double hbm_fraction,
                                    bool want_phases) const {
  DetailedRunResult out;
  RunResult& r = out.summary;
  r.feasible = true;

  double latency_weight = 0.0;
  double hit_weight = 0.0;
  for (const auto& phase : profile.phases()) {
    const sim::PhaseTiming t = timing_.time_phase(phase, run_config, hbm_fraction);
    r.seconds += t.seconds;
    r.bytes_from_memory += t.memory_bytes;
    r.flops += phase.flops;
    r.avg_latency_ns += t.effective_latency_ns * t.memory_bytes;
    latency_weight += t.memory_bytes;
    r.mcdram_hit_rate += t.mcdram_hit_rate * t.memory_bytes;
    hit_weight += t.memory_bytes;
    if (want_phases) out.phases.push_back(PhaseReport{phase.name, t});
  }
  if (latency_weight > 0.0) r.avg_latency_ns /= latency_weight;
  if (hit_weight > 0.0) r.mcdram_hit_rate /= hit_weight;
  if (r.seconds > 0.0) r.achieved_bw_gbs = r.bytes_from_memory / (r.seconds * 1e9);
  return out;
}

DetailedRunResult Machine::run_impl_tiered(const trace::AccessProfile& profile,
                                           const RunConfig& run_config,
                                           const std::vector<double>& fractions,
                                           bool want_phases) const {
  DetailedRunResult out;
  RunResult& r = out.summary;
  r.feasible = true;

  double latency_weight = 0.0;
  double hit_weight = 0.0;
  for (const auto& phase : profile.phases()) {
    const sim::PhaseTiming t =
        timing_.time_phase_tiered(phase, run_config, topology_, fractions);
    r.seconds += t.seconds;
    r.bytes_from_memory += t.memory_bytes;
    r.flops += phase.flops;
    r.avg_latency_ns += t.effective_latency_ns * t.memory_bytes;
    latency_weight += t.memory_bytes;
    r.mcdram_hit_rate += t.mcdram_hit_rate * t.memory_bytes;
    hit_weight += t.memory_bytes;
    if (want_phases) out.phases.push_back(PhaseReport{phase.name, t});
  }
  if (latency_weight > 0.0) r.avg_latency_ns /= latency_weight;
  if (hit_weight > 0.0) r.mcdram_hit_rate /= hit_weight;
  if (r.seconds > 0.0) r.achieved_bw_gbs = r.bytes_from_memory / (r.seconds * 1e9);
  return out;
}

RunResult Machine::run(const trace::AccessProfile& profile,
                       const RunConfig& run_config) const {
  return run_detailed(profile, run_config).summary;
}

DetailedRunResult Machine::run_detailed(const trace::AccessProfile& profile,
                                        const RunConfig& run_config) const {
  if (!run_config.valid()) throw std::invalid_argument("Machine::run: invalid RunConfig");

  const Resolved resolved =
      resolve_placement(profile.resident_bytes(), run_config.config);
  if (!resolved.ok) {
    DetailedRunResult out;
    out.summary.feasible = false;
    out.summary.infeasible_reason = resolved.error;
    return out;
  }
  if (tiered()) {
    return run_impl_tiered(profile, run_config, resolved.fractions,
                           /*want_phases=*/true);
  }
  const double hbm_fraction = run_config.config == MemConfig::HBM ? 1.0 : 0.0;
  return run_impl(profile, run_config, hbm_fraction, /*want_phases=*/true);
}

RunResult Machine::run_flat_placement(const trace::AccessProfile& profile, int threads,
                                      Placement placement) const {
  const Resolved resolved = resolve_flat(profile.resident_bytes(), placement);
  if (!resolved.ok) {
    RunResult r;
    r.feasible = false;
    r.infeasible_reason = resolved.error;
    return r;
  }
  RunConfig rc;
  rc.threads = threads;
  rc.config = MemConfig::DRAM;  // flat mode; split handled by hbm_fraction
  if (tiered()) return run_impl_tiered(profile, rc, resolved.fractions, false).summary;
  return run_impl(profile, rc, resolved.hbm_fraction, false).summary;
}

RunResult Machine::run_hybrid(const trace::AccessProfile& profile, int threads,
                              double cache_fraction, std::uint64_t flat_hbm_bytes) const {
  if (cache_fraction < 0.0 || cache_fraction > 1.0) {
    throw std::invalid_argument("run_hybrid: cache_fraction outside [0,1]");
  }
  const auto hbm_total = config_.timing.hbm.capacity_bytes;
  const auto cache_bytes =
      static_cast<std::uint64_t>(static_cast<double>(hbm_total) * cache_fraction);
  const auto flat_capacity = hbm_total - cache_bytes;
  const std::uint64_t resident = profile.resident_bytes();
  if (flat_hbm_bytes > flat_capacity) {
    RunResult r;
    r.feasible = false;
    r.infeasible_reason = "hybrid: flat MCDRAM partition smaller than requested placement";
    return r;
  }
  if (resident < flat_hbm_bytes) flat_hbm_bytes = resident;
  if (resident - flat_hbm_bytes > config_.timing.ddr.capacity_bytes) {
    RunResult r;
    r.feasible = false;
    r.infeasible_reason = "hybrid: DDR cannot hold the spill";
    return r;
  }

  // Rebuild a machine whose MCDRAM-cache capacity is the cache partition and
  // whose flat-HBM traffic share matches the explicit placement; the DDR
  // share then flows through the partial cache (cache-mode path).
  MachineConfig hybrid_cfg = config_;
  hybrid_cfg.timing.mcdram.capacity_bytes = std::max<std::uint64_t>(cache_bytes, 1);
  const sim::TimingModel hybrid_timing(hybrid_cfg.timing);

  const double hbm_fraction =
      resident == 0 ? 0.0
                    : static_cast<double>(flat_hbm_bytes) / static_cast<double>(resident);

  RunResult r;
  r.feasible = true;
  double latency_weight = 0.0;
  for (const auto& phase : profile.phases()) {
    // Flat share goes straight to HBM; the remainder is timed through the
    // (shrunken) cache path when a cache partition exists, else plain DDR.
    RunConfig flat_rc{MemConfig::DRAM, threads, 0.0};
    RunConfig cache_rc{cache_bytes > 0 ? MemConfig::CacheMode : MemConfig::DRAM, threads,
                       0.0};

    trace::AccessPhase hbm_part = phase;
    trace::AccessPhase ddr_part = phase;
    hbm_part.logical_bytes = phase.logical_bytes * hbm_fraction;
    hbm_part.flops = phase.flops * hbm_fraction;
    ddr_part.logical_bytes = phase.logical_bytes * (1.0 - hbm_fraction);
    ddr_part.flops = phase.flops * (1.0 - hbm_fraction);

    // The two sub-streams share the cores' outstanding-request budget, so
    // their times add (equivalent to splitting concurrency when latency-
    // bound; conservative about controller overlap when bandwidth-bound).
    double seconds = 0.0;
    double bytes = 0.0;
    double lat_acc = 0.0;
    if (hbm_part.logical_bytes > 0.0) {
      const auto t = hybrid_timing.time_phase(hbm_part, flat_rc, 1.0);
      seconds += t.seconds;
      bytes += t.memory_bytes;
      lat_acc += t.effective_latency_ns * t.memory_bytes;
    }
    if (ddr_part.logical_bytes > 0.0) {
      const auto t = hybrid_timing.time_phase(ddr_part, cache_rc, 0.0);
      seconds += t.seconds;
      bytes += t.memory_bytes;
      lat_acc += t.effective_latency_ns * t.memory_bytes;
      r.mcdram_hit_rate = t.mcdram_hit_rate;
    }
    if (phase.pattern == trace::Pattern::Compute && phase.flops > 0.0) {
      // Pure-compute phases do not split: time once at full flops.
      const auto t = hybrid_timing.time_phase(phase, flat_rc, 0.0);
      seconds = t.seconds;
    }
    r.seconds += seconds;
    r.bytes_from_memory += bytes;
    r.flops += phase.flops;
    r.avg_latency_ns += lat_acc;
    latency_weight += bytes;
  }
  if (latency_weight > 0.0) r.avg_latency_ns /= latency_weight;
  if (r.seconds > 0.0) r.achieved_bw_gbs = r.bytes_from_memory / (r.seconds * 1e9);
  return r;
}

}  // namespace knl
