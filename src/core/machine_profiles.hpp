// Shipped machine profiles: the cross-architecture conformance matrix.
//
// Each profile names a MachineConfig factory, the machine file that declares
// its memory topology (under machines/), and the golden-baseline directory
// `knl-repro` diffs it against. The KNL testbed keeps the historical root
// golden/ directory — its artifacts predate the profile matrix and must stay
// bit-for-bit stable — while every other profile blesses into
// golden/profiles/<name>/.
#pragma once

#include <string>
#include <vector>

#include "core/machine_config.hpp"

namespace knl {

struct MachineProfile {
  std::string name;          ///< CLI spelling (`knl-repro run --profile <name>`)
  std::string title;         ///< human label for logs and docs
  std::string machine_file;  ///< repo-relative machine file under machines/
  std::string golden_dir;    ///< repo-relative default golden directory
  MachineConfig (*make)() = nullptr;
  /// Whether the paper's KNL shape checks are expected to hold on this
  /// machine. The checks encode figure-level claims measured on a KNL 7210
  /// (crossovers, HT scaling); other architectures track goldens by metric
  /// diff only, and `knl-repro bless` does not gate on checks for them.
  bool paper_checks = false;
};

/// Every shipped profile, in matrix order (KNL first).
[[nodiscard]] const std::vector<MachineProfile>& machine_profiles();

/// Look up a profile by name; nullptr when unknown.
[[nodiscard]] const MachineProfile* find_machine_profile(const std::string& name);

/// Comma-joined profile names, for error messages and --help text.
[[nodiscard]] std::string machine_profile_names();

}  // namespace knl
