#include "core/types.hpp"

#include <ostream>

namespace knl {

std::string to_string(MemoryMode mode) {
  switch (mode) {
    case MemoryMode::Flat: return "flat";
    case MemoryMode::Cache: return "cache";
    case MemoryMode::Hybrid: return "hybrid";
  }
  return "unknown";
}

std::string to_string(MemNode node) {
  switch (node) {
    case MemNode::DDR: return "DDR";
    case MemNode::HBM: return "HBM";
  }
  return "unknown";
}

std::string to_string(Placement placement) {
  switch (placement) {
    case Placement::DDR: return "membind=0";
    case Placement::HBM: return "membind=1";
    case Placement::Interleave: return "interleave=0,1";
    case Placement::Preferred: return "preferred=1";
  }
  return "unknown";
}

std::string to_string(MemConfig config) {
  switch (config) {
    case MemConfig::DRAM: return "DRAM";
    case MemConfig::HBM: return "HBM";
    case MemConfig::CacheMode: return "Cache Mode";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, MemoryMode mode) { return os << to_string(mode); }
std::ostream& operator<<(std::ostream& os, MemNode node) { return os << to_string(node); }
std::ostream& operator<<(std::ostream& os, Placement placement) { return os << to_string(placement); }
std::ostream& operator<<(std::ostream& os, MemConfig config) { return os << to_string(config); }

}  // namespace knl
