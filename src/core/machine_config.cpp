#include "core/machine_config.hpp"

#include <stdexcept>

namespace knl {

void MachineConfig::validate() const {
  if (timing.ddr.capacity_bytes != physical.ddr.capacity_bytes ||
      timing.hbm.capacity_bytes != physical.hbm.capacity_bytes) {
    throw std::invalid_argument(
        "MachineConfig: timing and physical views disagree on node capacities");
  }
  if (timing.ddr.peak_bw_gbs <= 0.0 || timing.hbm.peak_bw_gbs <= 0.0) {
    throw std::invalid_argument("MachineConfig: bandwidths must be positive");
  }
  if (timing.ddr.idle_latency_ns <= 0.0 || timing.hbm.idle_latency_ns <= 0.0) {
    throw std::invalid_argument("MachineConfig: latencies must be positive");
  }
  if (physical.page_bytes == 0 || timing.mcdram.capacity_bytes == 0) {
    throw std::invalid_argument("MachineConfig: page and cache sizes must be positive");
  }
}

MachineConfig MachineConfig::knl7210() { return MachineConfig{}; }

MachineConfig MachineConfig::knl7210_equal_latency() {
  MachineConfig cfg;
  cfg.timing.hbm.idle_latency_ns = cfg.timing.ddr.idle_latency_ns;
  return cfg;
}

MachineConfig MachineConfig::knl7210_snc4() {
  MachineConfig cfg;
  cfg.timing.hierarchy.mesh.mode = sim::ClusterMode::Snc4;
  // Directory confined to a quadrant: a slightly cheaper lookup than
  // quadrant mode's memory-side co-location.
  cfg.timing.hierarchy.mesh.directory_lookup_ns = 9.0;
  return cfg;
}

MachineConfig MachineConfig::ddr_only() {
  MachineConfig cfg;
  // Shrink MCDRAM to a negligible sliver rather than zero so invariants and
  // topology math remain well-defined; HBM placements will simply fail.
  cfg.timing.hbm.capacity_bytes = params::kPageBytes;
  cfg.physical.hbm.capacity_bytes = params::kPageBytes;
  return cfg;
}

}  // namespace knl
