#include "core/machine_config.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace knl {

namespace {

// FNV-1a over the raw bytes of trivially-copyable values. Doubles are mixed
// via their bit pattern, so any parameter change — however small — changes
// the fingerprint, and equal configs always agree.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mix(std::uint64_t& h, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  mix_bytes(h, &value, sizeof(value));
}

void mix_node(std::uint64_t& h, const params::NodeParams& node) {
  mix(h, node.capacity_bytes);
  mix(h, node.peak_bw_gbs);
  mix(h, node.stream_bw_gbs);
  mix(h, node.random_bw_gbs);
  mix(h, node.idle_latency_ns);
}

// The canonical two-tier derivation: what the timing view has always
// implied. MCDRAM spans the 8 EDC controllers and can front DDR as a cache;
// DDR4 spans the 6 DDR channels. With default timing this is exactly
// sim::MemoryTopology::knl7210().
sim::MemoryTopology derived_topology(const sim::TimingConfig& timing) {
  sim::MemoryTopology topology;
  topology.name = "knl7210";
  topology.tiers = {
      sim::MemoryTier{.name = "MCDRAM",
                      .kind = sim::TierKind::HBM,
                      .params = timing.hbm,
                      .controllers_begin = 0,
                      .controllers_end = 8,
                      .backing = 1,
                      .cache_front = true},
      sim::MemoryTier{.name = "DDR4",
                      .kind = sim::TierKind::DRAM,
                      .params = timing.ddr,
                      .controllers_begin = 8,
                      .controllers_end = 14,
                      .backing = -1,
                      .cache_front = false},
  };
  return topology;
}

}  // namespace

sim::MemoryTopology MachineConfig::resolved_topology() const {
  return has_declared_topology() ? topology : derived_topology(timing);
}

void MachineConfig::apply_topology(const sim::MemoryTopology& declared) {
  declared.validate();
  topology = declared;
  const sim::MemoryTier& fast = declared.tier(
      static_cast<std::size_t>(declared.fast_tier()));
  const sim::MemoryTier& dram = declared.tier(
      static_cast<std::size_t>(declared.dram_tier()));
  timing.hbm = fast.params;
  timing.ddr = dram.params;
  physical.hbm = fast.params;
  physical.ddr = dram.params;
  if (fast.cache_front) timing.mcdram.capacity_bytes = fast.params.capacity_bytes;
}

MachineConfig MachineConfig::from_machine_file(const std::string& text) {
  MachineConfig cfg;
  cfg.apply_topology(sim::MemoryTopology::parse_machine_file(text));
  return cfg;
}

void MachineConfig::validate() const {
  if (has_declared_topology()) {
    topology.validate();
    const sim::MemoryTier& fast =
        topology.tier(static_cast<std::size_t>(topology.fast_tier()));
    const sim::MemoryTier& dram =
        topology.tier(static_cast<std::size_t>(topology.dram_tier()));
    if (!(fast.params == timing.hbm) || !(dram.params == timing.ddr)) {
      throw std::invalid_argument(
          "MachineConfig: declared topology and timing views disagree "
          "(use apply_topology to keep them in sync)");
    }
  }
  if (timing.ddr.capacity_bytes != physical.ddr.capacity_bytes ||
      timing.hbm.capacity_bytes != physical.hbm.capacity_bytes) {
    throw std::invalid_argument(
        "MachineConfig: timing and physical views disagree on node capacities");
  }
  if (timing.ddr.peak_bw_gbs <= 0.0 || timing.hbm.peak_bw_gbs <= 0.0) {
    throw std::invalid_argument("MachineConfig: bandwidths must be positive");
  }
  if (timing.ddr.idle_latency_ns <= 0.0 || timing.hbm.idle_latency_ns <= 0.0) {
    throw std::invalid_argument("MachineConfig: latencies must be positive");
  }
  if (physical.page_bytes == 0 || timing.mcdram.capacity_bytes == 0) {
    throw std::invalid_argument("MachineConfig: page and cache sizes must be positive");
  }
}

std::uint64_t MachineConfig::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  // Schema version first: a bump invalidates every cached result derived
  // from the old field set, even where raw parameter bytes would collide.
  mix(h, schema_version);
  // Timing view.
  mix_node(h, timing.ddr);
  mix_node(h, timing.hbm);
  mix(h, timing.hierarchy.l1_bytes);
  mix(h, timing.hierarchy.l2_tile_bytes);
  mix(h, timing.hierarchy.tiles);
  mix(h, timing.hierarchy.l1_latency_ns);
  mix(h, timing.hierarchy.l2_latency_ns);
  mix(h, timing.hierarchy.l2_effectiveness);
  mix(h, timing.hierarchy.mesh.tiles_x);
  mix(h, timing.hierarchy.mesh.tiles_y);
  mix(h, timing.hierarchy.mesh.hop_latency_ns);
  mix(h, timing.hierarchy.mesh.directory_lookup_ns);
  mix(h, timing.hierarchy.mesh.mode);
  mix(h, timing.tlb.page_bytes);
  mix(h, timing.tlb.entries);
  mix(h, timing.tlb.walk_cached_ns);
  mix(h, timing.tlb.walk_memory_ns);
  mix(h, timing.tlb.walk_thrash_bytes);
  mix(h, timing.mcdram.capacity_bytes);
  mix(h, timing.mcdram.line_bytes);
  mix(h, timing.mcdram.tag_latency_ns);
  mix(h, timing.mcdram.miss_overhead_s_per_gb);
  mix(h, timing.mcdram.sweep_knee);
  mix(h, timing.mcdram.sweep_sharpness);
  mix(h, timing.cores);
  mix(h, timing.smt_per_core);
  mix(h, timing.seq_mlp_per_core);
  mix(h, timing.rand_mlp_per_thread);
  mix(h, timing.queue_coefficient);
  // Physical view (frame layout drives cache-mode conflict behaviour).
  mix(h, physical.page_bytes);
  mix_node(h, physical.ddr);
  mix_node(h, physical.hbm);
  mix(h, physical.fragmentation);
  mix(h, physical.seed);
  // Topology: mixed only when it deviates from the canonical two-tier
  // derivation. A declaration equal to the derivation leaves the resolved
  // topology unchanged, so skipping it keeps the mapping injective *and*
  // preserves the KNL fingerprint embedded in the golden artifacts.
  if (has_declared_topology() && !(topology == derived_topology(timing))) {
    topology.mix_fingerprint(h);
  }
  return h;
}

MachineConfig MachineConfig::knl7210() { return MachineConfig{}; }

MachineConfig MachineConfig::knl7210_equal_latency() {
  MachineConfig cfg;
  cfg.timing.hbm.idle_latency_ns = cfg.timing.ddr.idle_latency_ns;
  return cfg;
}

MachineConfig MachineConfig::knl7210_snc4() {
  MachineConfig cfg;
  cfg.timing.hierarchy.mesh.mode = sim::ClusterMode::Snc4;
  // Directory confined to a quadrant: a slightly cheaper lookup than
  // quadrant mode's memory-side co-location.
  cfg.timing.hierarchy.mesh.directory_lookup_ns = 9.0;
  return cfg;
}

MachineConfig MachineConfig::xeon_max() {
  MachineConfig cfg;
  cfg.apply_topology(sim::MemoryTopology::xeon_max());
  // Sapphire Rapids core complex: 56 performance cores, 2-way SMT, deeper
  // out-of-order windows than KNL's Silvermont-derived cores.
  cfg.timing.cores = 56;
  cfg.timing.smt_per_core = 2;
  cfg.timing.seq_mlp_per_core = 24.0;
  cfg.timing.rand_mlp_per_thread = 8.0;
  return cfg;
}

MachineConfig MachineConfig::knl_nvm() {
  MachineConfig cfg;
  cfg.apply_topology(sim::MemoryTopology::knl_nvm());
  return cfg;
}

MachineConfig MachineConfig::ddr_only() {
  MachineConfig cfg;
  // Shrink MCDRAM to a negligible sliver rather than zero so invariants and
  // topology math remain well-defined; HBM placements will simply fail.
  cfg.timing.hbm.capacity_bytes = params::kPageBytes;
  cfg.physical.hbm.capacity_bytes = params::kPageBytes;
  return cfg;
}

}  // namespace knl
