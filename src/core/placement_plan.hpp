// Fine-grained, per-data-structure placement — the paper's §VI future work
// ("apply our conclusions to individual data structures") implemented
// against the model.
//
// A workload profile's phases correspond to its major data structures
// (MiniFE: CSR matrix vs CG vectors; XSBench: unionized grid vs nuclide
// data). In flat mode, memkind lets each structure live in a different
// memory. A PlacementPlan assigns each phase a node; the optimizer searches
// for the assignment that minimizes modelled run time under the MCDRAM
// capacity constraint — favouring bandwidth-bound structures for MCDRAM and
// leaving latency-bound ones in DDR, exactly the paper's per-application
// conclusion applied per-structure.
#pragma once

#include <map>
#include <string>

#include "core/machine.hpp"
#include "trace/profile.hpp"

namespace knl {

/// Phase (data structure) name -> placement. Phases absent from the map
/// default to DDR. Values may be fractional: share of the structure's pages
/// in MCDRAM (1.0 = fully HBM-resident).
using PlacementPlan = std::map<std::string, double>;

struct PlanOutcome {
  PlacementPlan plan;
  RunResult result;
  std::uint64_t hbm_bytes = 0;     ///< MCDRAM consumed by the plan.
  double speedup_vs_all_ddr = 1.0;
};

class FineGrainedPlacer {
 public:
  explicit FineGrainedPlacer(const Machine& machine) : machine_(machine) {}

  /// Run `profile` in flat mode with an explicit per-phase plan.
  /// Fails (infeasible result) if the plan overcommits either node.
  /// Note: phases are assumed to describe disjoint structures (true for the
  /// bundled workloads); shared structures should be expressed as one phase.
  [[nodiscard]] RunResult run_plan(const trace::AccessProfile& profile, int threads,
                                   const PlacementPlan& plan) const;

  /// Greedy knapsack over phases: rank structures by modelled time saved
  /// per MCDRAM byte, fill the MCDRAM budget, allow one partial (fractional)
  /// placement at the boundary. Structures that the model says run *slower*
  /// from MCDRAM (latency-bound) are never placed there.
  [[nodiscard]] PlanOutcome optimize(const trace::AccessProfile& profile,
                                     int threads) const;

 private:
  [[nodiscard]] std::uint64_t hbm_capacity() const {
    return machine_.config().timing.hbm.capacity_bytes;
  }

  const Machine& machine_;
};

}  // namespace knl
