#include "core/placement_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace knl {

RunResult FineGrainedPlacer::run_plan(const trace::AccessProfile& profile, int threads,
                                      const PlacementPlan& plan) const {
  RunResult result;
  result.feasible = true;

  // Capacity accounting across phases/structures.
  std::uint64_t hbm_used = 0;
  std::uint64_t ddr_used = 0;
  for (const auto& phase : profile.phases()) {
    double fraction = 0.0;
    if (auto it = plan.find(phase.name); it != plan.end()) {
      if (it->second < 0.0 || it->second > 1.0) {
        throw std::invalid_argument("run_plan: fraction outside [0,1] for phase '" +
                                    phase.name + "'");
      }
      fraction = it->second;
    }
    const auto hbm_part = static_cast<std::uint64_t>(
        static_cast<double>(phase.footprint_bytes) * fraction);
    hbm_used += hbm_part;
    ddr_used += phase.footprint_bytes - hbm_part;
  }
  for (const auto& [name, fraction] : plan) {
    bool found = false;
    for (const auto& phase : profile.phases()) {
      found = found || phase.name == name;
    }
    if (!found) {
      throw std::invalid_argument("run_plan: plan names unknown phase '" + name + "'");
    }
  }
  if (hbm_used > machine_.config().timing.hbm.capacity_bytes) {
    result.feasible = false;
    result.infeasible_reason = "plan overcommits MCDRAM";
    return result;
  }
  if (ddr_used > machine_.config().timing.ddr.capacity_bytes) {
    result.feasible = false;
    result.infeasible_reason = "plan overcommits DDR";
    return result;
  }

  const auto& timing = machine_.timing();
  const RunConfig rc{MemConfig::DRAM, threads, 0.0};  // flat mode
  double latency_weight = 0.0;
  for (const auto& phase : profile.phases()) {
    double fraction = 0.0;
    if (auto it = plan.find(phase.name); it != plan.end()) fraction = it->second;
    const auto t = timing.time_phase(phase, rc, fraction);
    result.seconds += t.seconds;
    result.bytes_from_memory += t.memory_bytes;
    result.flops += phase.flops;
    result.avg_latency_ns += t.effective_latency_ns * t.memory_bytes;
    latency_weight += t.memory_bytes;
  }
  if (latency_weight > 0.0) result.avg_latency_ns /= latency_weight;
  if (result.seconds > 0.0) {
    result.achieved_bw_gbs = result.bytes_from_memory / (result.seconds * 1e9);
  }
  return result;
}

PlanOutcome FineGrainedPlacer::optimize(const trace::AccessProfile& profile,
                                        int threads) const {
  const auto& timing = machine_.timing();
  const RunConfig rc{MemConfig::DRAM, threads, 0.0};

  struct Candidate {
    const trace::AccessPhase* phase;
    double seconds_saved;  // t(DDR) - t(HBM), full placement
    double density;        // saved per byte
  };
  std::vector<Candidate> candidates;
  for (const auto& phase : profile.phases()) {
    if (phase.footprint_bytes == 0) continue;
    const double t_ddr = timing.time_phase(phase, rc, 0.0).seconds;
    const double t_hbm = timing.time_phase(phase, rc, 1.0).seconds;
    const double saved = t_ddr - t_hbm;
    if (saved <= 0.0) continue;  // latency-bound structure: keep in DDR
    candidates.push_back(
        {&phase, saved, saved / static_cast<double>(phase.footprint_bytes)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.density > b.density;
                   });

  PlanOutcome outcome;
  std::uint64_t budget = hbm_capacity();
  for (const Candidate& c : candidates) {
    if (budget == 0) break;
    const std::uint64_t take = std::min<std::uint64_t>(budget, c.phase->footprint_bytes);
    const double fraction =
        static_cast<double>(take) / static_cast<double>(c.phase->footprint_bytes);
    // Partial placement splits traffic linearly in the model; only worth it
    // if the fractional share still helps (it does whenever saved > 0).
    outcome.plan[c.phase->name] = fraction;
    outcome.hbm_bytes += take;
    budget -= take;
  }

  outcome.result = run_plan(profile, threads, outcome.plan);
  const RunResult all_ddr = run_plan(profile, threads, {});
  if (outcome.result.feasible && all_ddr.feasible && outcome.result.seconds > 0.0) {
    outcome.speedup_vs_all_ddr = all_ddr.seconds / outcome.result.seconds;
  }
  return outcome;
}

}  // namespace knl
