#include "core/fault/atomic_io.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/fault/fault_injection.hpp"
#include "core/fault/retry.hpp"

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace knl::io {

namespace {

std::uint64_t basename_key(const std::string& path) {
  return fault::site_key(std::filesystem::path(path).filename().string());
}

bool fsync_file(std::FILE* file) {
#ifdef _WIN32
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(fileno(file)) == 0;
#endif
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& text,
                       std::string* error) {
  fault::maybe_inject(fault::kSiteJsonWrite, basename_key(path));

  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "could not open " + temp + ": " + std::strerror(errno);
    }
    return false;
  }
  const bool written =
      std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
      std::fflush(file) == 0 && fsync_file(file);
  if (std::fclose(file) != 0 || !written) {
    if (error != nullptr) *error = "could not write " + temp;
    std::remove(temp.c_str());
    return false;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "could not rename " + temp + " -> " + path + ": " +
               std::strerror(errno);
    }
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_text_file(const std::string& path,
                                          std::string* error) {
  fault::maybe_inject(fault::kSiteJsonRead, basename_key(path));

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "could not open " + path + ": " + std::strerror(errno);
    }
    return std::nullopt;
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    if (error != nullptr) *error = "could not read " + path;
    return std::nullopt;
  }
  return text;
}

bool write_file_with_retry(const std::string& path, const std::string& text,
                           std::string* error) {
  return fault::with_retry(fault::RetryPolicy{}, basename_key(path),
                           [&] { return atomic_write_file(path, text, error); });
}

std::optional<std::string> read_file_with_retry(const std::string& path,
                                                std::string* error) {
  return fault::with_retry(fault::RetryPolicy{}, basename_key(path),
                           [&] { return read_text_file(path, error); });
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a_hex(std::string_view text) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fnv1a(text));
  return buf;
}

}  // namespace knl::io
