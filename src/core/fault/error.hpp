// knl::Error — the structured error taxonomy of the whole library.
//
// Every failure the execution stack can surface is classified into one of
// four categories, because the *category* decides the recovery policy, not
// the message:
//
//   | category      | meaning                                | recovery        |
//   |---------------|----------------------------------------|-----------------|
//   | Transient     | would likely succeed if retried        | retry + backoff |
//   | CorruptInput  | malformed artifact/golden/plan on disk | readable error  |
//   | Resource      | substrate failure (pool, capacity, IO) | serial fallback |
//   | Internal      | invariant violation, model bug         | abort + report  |
//
// Error derives from std::runtime_error so every pre-taxonomy catch site
// (and test expectation) keeps working; new code should catch knl::Error
// and branch on category(). Errors carry a stable machine-readable code
// slug ("sweep/cells-failed") and a context chain built with
// with_context(), so a failure deep in a sweep cell surfaces with the
// experiment and cell that hit it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace knl {

enum class ErrorCategory : std::uint8_t {
  Transient,     ///< retriable: injected fault, flaky IO, contention
  CorruptInput,  ///< unreadable/unparseable input: golden, journal, plan
  Resource,      ///< execution substrate failed: pool dispatch, capacity
  Internal,      ///< invariant violation: verify divergence, model bug
};

/// Stable lower-case name ("transient", "corrupt-input", "resource",
/// "internal") — the spelling the fault-plan grammar and reports use.
[[nodiscard]] const char* to_string(ErrorCategory category);

class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, std::string code, std::string message);

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
  /// Stable slug identifying the failure site, e.g. "fault/injected".
  [[nodiscard]] const std::string& code() const noexcept { return code_; }
  /// The bare message, without category/code/context decoration.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  /// Context frames, innermost first (what() renders them outermost-last).
  [[nodiscard]] const std::vector<std::string>& context() const noexcept {
    return context_;
  }

  /// A copy of this error with one more context frame, e.g.
  /// `throw e.with_context("experiment 'fig2_stream'")`.
  [[nodiscard]] Error with_context(std::string frame) const;

  [[nodiscard]] static Error transient(std::string code, std::string message);
  [[nodiscard]] static Error corrupt_input(std::string code, std::string message);
  [[nodiscard]] static Error resource(std::string code, std::string message);
  [[nodiscard]] static Error internal(std::string code, std::string message);

  /// True when `e` is a knl::Error of category Transient — the single
  /// predicate every retry loop keys on.
  [[nodiscard]] static bool is_transient(const std::exception& e) noexcept;

 private:
  Error(ErrorCategory category, std::string code, std::string message,
        std::vector<std::string> context);

  ErrorCategory category_;
  std::string code_;
  std::string message_;
  std::vector<std::string> context_;
};

}  // namespace knl
