#include "core/fault/fault_injection.hpp"

#include <cstdio>
#include <cstdlib>

namespace knl::fault {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t byte) noexcept {
  h ^= byte & 0xffu;
  h *= kFnvPrime;
  return h;
}

/// Pure selection hash over (seed, site, key): deterministic for any
/// execution order, thread count, or platform.
std::uint64_t selection_hash(std::uint64_t seed, std::string_view site,
                             std::uint64_t key) noexcept {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < 8; ++i) h = fnv1a_step(h, seed >> (8 * i));
  for (const char c : site) h = fnv1a_step(h, static_cast<unsigned char>(c));
  for (int i = 0; i < 8; ++i) h = fnv1a_step(h, key >> (8 * i));
  // One xorshift finalization round: FNV alone keeps low bits too regular
  // for rate thresholds on sequential keys.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

bool selected_by(const FaultSite& site_spec, std::uint64_t seed,
                 std::string_view site, std::uint64_t key) noexcept {
  if (site_spec.site != site) return false;
  if (site_spec.key >= 0) return key == static_cast<std::uint64_t>(site_spec.key);
  if (site_spec.every > 0) return key % site_spec.every == 0;
  if (site_spec.rate > 0.0) {
    const double u = static_cast<double>(selection_hash(seed, site, key)) /
                     18446744073709551616.0;  // 2^64
    return u < site_spec.rate;
  }
  return false;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    parts.push_back(text.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

Error bad_plan(const std::string& detail) {
  return Error::corrupt_input("fault/bad-plan",
                              "malformed fault plan: " + detail);
}

ErrorCategory parse_kind(const std::string& value) {
  if (value == "transient") return ErrorCategory::Transient;
  if (value == "corrupt-input") return ErrorCategory::CorruptInput;
  if (value == "resource") return ErrorCategory::Resource;
  if (value == "internal") return ErrorCategory::Internal;
  throw bad_plan("unknown kind '" + value +
                 "' (want transient|corrupt-input|resource|internal)");
}

double parse_double(const std::string& value, const std::string& field) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw bad_plan(field + "=" + value + " is not a number");
  }
  return parsed;
}

std::uint64_t parse_uint(const std::string& value, const std::string& field) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw bad_plan(field + "=" + value + " is not an integer");
  }
  return parsed;
}

}  // namespace

std::uint64_t site_key(std::string_view text) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : text) h = fnv1a_step(h, static_cast<unsigned char>(c));
  return h;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) throw bad_plan("empty spec");
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::vector<std::string> fields = split(clause, ',');
    // A bare "seed=N" clause sets the plan seed; everything else is a site.
    if (fields.size() == 1 && fields[0].rfind("seed=", 0) == 0) {
      plan.seed = parse_uint(fields[0].substr(5), "seed");
      continue;
    }
    FaultSite site;
    for (const std::string& field : fields) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        throw bad_plan("field '" + field + "' has no '='");
      }
      const std::string name = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (value.empty()) throw bad_plan("field '" + name + "' has no value");
      if (name == "site") {
        site.site = value;
      } else if (name == "rate") {
        site.rate = parse_double(value, "rate");
        if (site.rate <= 0.0 || site.rate > 1.0) {
          throw bad_plan("rate must be in (0, 1], got " + value);
        }
      } else if (name == "every") {
        site.every = parse_uint(value, "every");
        if (site.every == 0) throw bad_plan("every must be >= 1");
      } else if (name == "key") {
        site.key = static_cast<std::int64_t>(parse_uint(value, "key"));
      } else if (name == "attempts") {
        site.attempts = static_cast<int>(parse_uint(value, "attempts"));
        if (site.attempts < 1) throw bad_plan("attempts must be >= 1");
      } else if (name == "kind") {
        site.kind = parse_kind(value);
      } else {
        throw bad_plan("unknown field '" + name + "'");
      }
    }
    if (site.site.empty()) {
      throw bad_plan("clause '" + clause + "' names no site");
    }
    if (site.rate == 0.0 && site.every == 0 && site.key < 0) {
      throw bad_plan("site '" + site.site +
                     "' has no selector (rate=, every=, or key=)");
    }
    plan.sites.push_back(std::move(site));
  }
  if (plan.sites.empty()) throw bad_plan("no site clauses");
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string spec = "seed=" + std::to_string(seed);
  for (const FaultSite& site : sites) {
    spec += ";site=" + site.site;
    if (site.key >= 0) {
      spec += ",key=" + std::to_string(site.key);
    } else if (site.every > 0) {
      spec += ",every=" + std::to_string(site.every);
    } else {
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.17g", site.rate);
      spec += ",rate=" + std::string(rate);
    }
    spec += ",attempts=" + std::to_string(site.attempts);
    spec += ",kind=" + std::string(knl::to_string(site.kind));
  }
  return spec;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPlan plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  consumed_.clear();
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
  consumed_.clear();
}

void FaultInjector::reset_schedule() {
  const std::lock_guard<std::mutex> lock(mutex_);
  consumed_.clear();
  injected_.store(0, std::memory_order_relaxed);
}

const FaultSite* FaultInjector::match(std::string_view site,
                                      std::uint64_t key) const {
  for (const FaultSite& candidate : plan_.sites) {
    if (selected_by(candidate, plan_.seed, site, key)) return &candidate;
  }
  return nullptr;
}

void FaultInjector::maybe_inject(std::string_view site, std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return;
  const FaultSite* spec = match(site, key);
  if (spec == nullptr) return;
  const std::size_t site_index =
      static_cast<std::size_t>(spec - plan_.sites.data());
  int& used = consumed_[{site_index, key}];
  if (used >= spec->attempts) return;  // budget exhausted: key now succeeds
  ++used;
  injected_.fetch_add(1, std::memory_order_relaxed);
  throw Error(spec->kind, "fault/injected",
              "injected " + std::string(knl::to_string(spec->kind)) +
                  " fault at site '" + std::string(site) + "' key " +
                  std::to_string(key) + " (attempt " + std::to_string(used) +
                  "/" + std::to_string(spec->attempts) + ")");
}

bool FaultInjector::fires(std::string_view site, std::uint64_t key) {
  try {
    maybe_inject(site, key);
  } catch (const Error&) {
    return true;
  }
  return false;
}

bool FaultInjector::selects(std::string_view site, std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  return match(site, key) != nullptr;
}

bool arm_from_env(std::string* error) {
  const char* spec = std::getenv(kFaultPlanEnvVar);
  if (spec == nullptr || *spec == '\0') return true;
  try {
    FaultInjector::instance().arm(FaultPlan::parse(spec));
  } catch (const Error& e) {
    if (error != nullptr) {
      *error = std::string(kFaultPlanEnvVar) + ": " + e.what();
    }
    return false;
  }
  return true;
}

}  // namespace knl::fault
