// Deterministic, seeded fault injection — the chaos harness the resilience
// stack is tested (and CI-gated) against.
//
// A FaultPlan is a list of FaultSites: named injection points in the
// execution stack, each with a *keyed* selection rule (hash-rate, modulo,
// or exact key) and an attempt budget. Selection is a pure function of
// (plan seed, site name, key) — never of wall time, thread id, or call
// order — so the same plan produces the identical failure schedule whether
// a sweep runs on 1 worker or 8, and CI can replay an exact schedule with
// `KNL_FAULT_PLAN`.
//
// Grammar (clauses ';'-separated, fields ','-separated):
//
//   seed=42;site=sweep-cell,rate=0.15,kind=transient,attempts=2;site=...
//
//   rate=F       fail keys where hash(seed,site,key) < F        (0 < F <= 1)
//   every=N      fail keys where key % N == 0
//   key=N        fail exactly key N
//   attempts=N   each selected key fails N times, then succeeds (default 1)
//   kind=K       transient | corrupt-input | resource | internal
//
// Injection points live behind `maybe_inject(site, key)`: a single relaxed
// atomic load when no plan is armed, so production paths pay nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fault/error.hpp"

namespace knl::fault {

// Injection-site names (the keyed unit in parentheses).
inline constexpr const char* kSiteThreadPoolDispatch =
    "thread-pool-dispatch";                            // (submission sequence)
inline constexpr const char* kSiteSweepCell = "sweep-cell";  // (grid cell index)
inline constexpr const char* kSiteJsonRead = "json-read";    // (filename hash)
inline constexpr const char* kSiteJsonWrite = "json-write";  // (filename hash)
inline constexpr const char* kSiteReplayEpoch = "replay-epoch";  // (epoch index)
inline constexpr const char* kSitePipelineInterrupt =
    "pipeline-interrupt";  // (experiment index); non-throwing, SIGINT-style
inline constexpr const char* kSiteHttpRead =
    "http-read";  // (connection ordinal); torn/aborted request read
inline constexpr const char* kSiteHttpWrite =
    "http-write";  // (connection ordinal); truncated response frame
inline constexpr const char* kSiteSlowClient =
    "slow-client";  // (request index); client-side stalled writes (slow-loris)

inline constexpr const char* kFaultPlanEnvVar = "KNL_FAULT_PLAN";

/// One injection clause of a plan.
struct FaultSite {
  std::string site;
  double rate = 0.0;        ///< hash-rate selection when > 0
  std::uint64_t every = 0;  ///< modulo selection when > 0 (and rate == 0)
  std::int64_t key = -1;    ///< exact-key selection when >= 0 (highest priority)
  int attempts = 1;         ///< failures per selected key before it succeeds
  ErrorCategory kind = ErrorCategory::Transient;

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSite> sites;

  /// Parse the KNL_FAULT_PLAN grammar; throws knl::Error (corrupt-input)
  /// with the offending clause on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
  /// Canonical spec string; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Process-wide injector. arm() installs a plan and resets the per-key
/// attempt ledger; disarm() removes it. Thread-safe: selection is pure,
/// the attempt ledger is mutex-guarded, and the armed flag is a relaxed
/// atomic so un-armed fast paths cost one load.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(FaultPlan plan);
  void disarm();
  /// Forget which keys have already consumed their attempt budgets (the
  /// plan stays armed) — re-runs then replay the identical schedule.
  void reset_schedule();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Throw the planned knl::Error if (site, key) is selected and its
  /// attempt budget is not yet exhausted. No-op when disarmed.
  void maybe_inject(std::string_view site, std::uint64_t key);

  /// Non-throwing variant for control-flow sites (pipeline-interrupt):
  /// true when the fault fires, consuming one attempt.
  [[nodiscard]] bool fires(std::string_view site, std::uint64_t key);

  /// Pure selection query: would the plan ever fail (site, key)? Does not
  /// consume attempts — tests use it to compute expected schedules.
  [[nodiscard]] bool selects(std::string_view site, std::uint64_t key) const;

  /// Total faults fired since the last arm()/reset_schedule().
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  /// The clause selecting (site, key), or nullptr. Pure.
  [[nodiscard]] const FaultSite* match(std::string_view site,
                                       std::uint64_t key) const;

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> injected_{0};
  /// (site index in plan, key) -> attempts already consumed.
  std::map<std::pair<std::size_t, std::uint64_t>, int> consumed_;
};

/// Fast-path helper: costs one relaxed load when no plan is armed.
inline void maybe_inject(std::string_view site, std::uint64_t key) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.armed()) injector.maybe_inject(site, key);
}

/// Non-throwing helper for control-flow sites; false when disarmed.
inline bool fires(std::string_view site, std::uint64_t key) {
  FaultInjector& injector = FaultInjector::instance();
  return injector.armed() && injector.fires(site, key);
}

/// Arm from $KNL_FAULT_PLAN when set. Returns false (with *error) on a
/// malformed spec; true (armed or not) otherwise.
bool arm_from_env(std::string* error);

/// RAII plan scope for tests and CLI invocations: arms on construction,
/// disarms on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::instance().arm(std::move(plan));
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// FNV-1a hash of a string — the key derivation for path-keyed sites.
[[nodiscard]] std::uint64_t site_key(std::string_view text) noexcept;

}  // namespace knl::fault
