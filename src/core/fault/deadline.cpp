#include "core/fault/deadline.hpp"

#include <cstdio>
#include <limits>

namespace knl {

Deadline Deadline::after_ms(double budget_ms) {
  Deadline d;
  d.bounded_ = true;
  d.budget_ms_ = budget_ms;
  return d;
}

std::shared_ptr<const Deadline> Deadline::shared_after_ms(double budget_ms) {
  if (budget_ms <= 0.0) return nullptr;
  return std::make_shared<const Deadline>(after_ms(budget_ms));
}

double Deadline::elapsed_ms() const noexcept {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
}

double Deadline::remaining_ms() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return 0.0;
  if (!bounded_) return std::numeric_limits<double>::infinity();
  const double left = budget_ms_ - elapsed_ms();
  return left > 0.0 ? left : 0.0;
}

bool Deadline::expired() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return bounded_ && elapsed_ms() >= budget_ms_;
}

void Deadline::check(const std::string& what) const {
  if (!expired()) return;
  char detail[160];
  if (cancelled_.load(std::memory_order_relaxed)) {
    std::snprintf(detail, sizeof(detail), "cancelled after %.3f ms",
                  elapsed_ms());
  } else {
    std::snprintf(detail, sizeof(detail),
                  "deadline budget of %.3f ms exhausted (elapsed %.3f ms)",
                  budget_ms_, elapsed_ms());
  }
  throw Error::resource(kDeadlineExceededCode, what + ": " + detail);
}

}  // namespace knl
