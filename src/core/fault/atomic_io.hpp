// Crash-safe file IO: write-temp-fsync-rename, so a reader (or a crashed
// writer) never observes a half-written artifact or golden baseline.
//
// Both helpers double as fault-injection points: atomic_write_file passes
// through the "json-write" site and read_text_file through "json-read",
// keyed by the FNV hash of the file's basename — so an injected transient
// IO fault targets the same files on every run, whatever the write order.
// When a plan is armed these helpers may therefore throw knl::Error
// (Transient by default); real IO failures are reported via the bool/
// optional returns, never exceptions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace knl::io {

/// Atomically replace `path` with `text`: write `path`+".tmp", flush,
/// fsync, then rename over the destination. Returns false (with *error)
/// on IO failure; the temp file is removed on any failure path.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const std::string& text,
                                     std::string* error);

/// Read a whole file; nullopt (with *error) when missing or unreadable.
[[nodiscard]] std::optional<std::string> read_text_file(const std::string& path,
                                                        std::string* error);

/// Retrying variants for production call sites: absorb Transient
/// knl::Errors (injected IO faults, flaky filesystems) with the default
/// bounded backoff, keyed by the file's basename so the schedule is
/// deterministic. Non-transient errors and exhausted budgets propagate;
/// real IO failures still report via the bool/optional returns.
[[nodiscard]] bool write_file_with_retry(const std::string& path,
                                         const std::string& text,
                                         std::string* error);
[[nodiscard]] std::optional<std::string> read_file_with_retry(
    const std::string& path, std::string* error);

/// FNV-1a 64 content hash — the artifact digest the run journal records.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept;

/// fnv1a as a fixed-width 16-char lowercase hex string.
[[nodiscard]] std::string fnv1a_hex(std::string_view text);

}  // namespace knl::io
