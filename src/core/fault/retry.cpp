#include "core/fault/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace knl::fault {

namespace {

/// splitmix64 over (seed ^ key ^ attempt): cheap, well-mixed, and a pure
/// function of its inputs — the jitter determinism with_retry promises.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double backoff_delay_ms(const RetryPolicy& policy, int attempt,
                        std::uint64_t key) noexcept {
  const int step = attempt < 1 ? 0 : attempt - 1;
  const double raw =
      policy.base_delay_ms * std::pow(policy.multiplier, static_cast<double>(step));
  const double capped = std::min(raw, policy.max_delay_ms);
  if (policy.jitter <= 0.0) return capped;
  const std::uint64_t h =
      mix(policy.seed ^ mix(key) ^ static_cast<std::uint64_t>(attempt));
  const double unit = static_cast<double>(h) / 18446744073709551616.0;  // [0,1)
  // Scale into [1 - jitter, 1 + jitter].
  return capped * (1.0 + policy.jitter * (2.0 * unit - 1.0));
}

void sleep_for_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace knl::fault
