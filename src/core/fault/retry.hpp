// Bounded-exponential-backoff retry for transient faults.
//
// with_retry() re-invokes a callable while it throws knl::Error of category
// Transient, sleeping a deterministic backoff between attempts: delays grow
// geometrically from base_delay_ms, are capped at max_delay_ms, and carry a
// *seeded* jitter — a pure function of (policy seed, key, attempt), so two
// runs of the same plan back off identically and retry counters are exact,
// while distinct keys still decorrelate (no thundering herd on shared IO).
// Non-transient errors and exhausted budgets propagate unchanged.
#pragma once

#include <cstdint>

#include "core/fault/error.hpp"

namespace knl::fault {

struct RetryPolicy {
  int max_attempts = 3;        ///< total tries (1 = no retry)
  double base_delay_ms = 1.0;  ///< first backoff delay
  double multiplier = 2.0;     ///< geometric growth per retry
  double max_delay_ms = 50.0;  ///< backoff cap
  double jitter = 0.25;        ///< +/- fraction of the delay, deterministic
  std::uint64_t seed = 0x6b6e6c6d656dull;  ///< jitter seed ("knlmem")
};

/// Deterministic backoff before retry number `attempt` (1-based) of `key`:
/// min(base * multiplier^(attempt-1), max) scaled by the seeded jitter.
[[nodiscard]] double backoff_delay_ms(const RetryPolicy& policy, int attempt,
                                      std::uint64_t key) noexcept;

/// Sleep helper (std::this_thread); exposed for the journal's IO retries.
void sleep_for_ms(double ms);

/// Attempt accounting for exact retry counters in sweep stats.
struct RetryStats {
  int attempts = 0;  ///< tries made (success or final failure included)
  [[nodiscard]] int retries() const noexcept {
    return attempts > 1 ? attempts - 1 : 0;
  }
};

/// Invoke fn(); on a Transient knl::Error retry up to policy.max_attempts
/// total tries with backoff. Any other exception — and the last transient
/// failure once the budget is spent — propagates to the caller.
template <typename F>
auto with_retry(const RetryPolicy& policy, std::uint64_t key, F&& fn,
                RetryStats* stats = nullptr) -> decltype(fn()) {
  for (int attempt = 1;; ++attempt) {
    if (stats != nullptr) stats->attempts = attempt;
    try {
      return fn();
    } catch (const Error& e) {
      if (e.category() != ErrorCategory::Transient ||
          attempt >= policy.max_attempts) {
        throw;
      }
      sleep_for_ms(backoff_delay_ms(policy, attempt, key));
    }
  }
}

}  // namespace knl::fault
