#include "core/fault/error.hpp"

#include <utility>

namespace knl {

namespace {

std::string render_what(ErrorCategory category, const std::string& code,
                        const std::string& message,
                        const std::vector<std::string>& context) {
  std::string what = "[";
  what += to_string(category);
  what += "] ";
  what += code;
  what += ": ";
  what += message;
  if (!context.empty()) {
    what += " (in";
    for (const std::string& frame : context) {
      what += ' ';
      what += frame;
      what += ';';
    }
    what.back() = ')';
  }
  return what;
}

}  // namespace

const char* to_string(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::Transient:
      return "transient";
    case ErrorCategory::CorruptInput:
      return "corrupt-input";
    case ErrorCategory::Resource:
      return "resource";
    case ErrorCategory::Internal:
      return "internal";
  }
  return "unknown";
}

Error::Error(ErrorCategory category, std::string code, std::string message)
    : Error(category, std::move(code), std::move(message), {}) {}

Error::Error(ErrorCategory category, std::string code, std::string message,
             std::vector<std::string> context)
    : std::runtime_error(render_what(category, code, message, context)),
      category_(category),
      code_(std::move(code)),
      message_(std::move(message)),
      context_(std::move(context)) {}

Error Error::with_context(std::string frame) const {
  std::vector<std::string> context = context_;
  context.push_back(std::move(frame));
  return Error(category_, code_, message_, std::move(context));
}

Error Error::transient(std::string code, std::string message) {
  return Error(ErrorCategory::Transient, std::move(code), std::move(message));
}

Error Error::corrupt_input(std::string code, std::string message) {
  return Error(ErrorCategory::CorruptInput, std::move(code), std::move(message));
}

Error Error::resource(std::string code, std::string message) {
  return Error(ErrorCategory::Resource, std::move(code), std::move(message));
}

Error Error::internal(std::string code, std::string message) {
  return Error(ErrorCategory::Internal, std::move(code), std::move(message));
}

bool Error::is_transient(const std::exception& e) noexcept {
  const auto* error = dynamic_cast<const Error*>(&e);
  return error != nullptr && error->category() == ErrorCategory::Transient;
}

}  // namespace knl
