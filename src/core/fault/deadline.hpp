// knl::Deadline — a wall-clock budget that travels with a request.
//
// A Deadline is created once at admission (service entry, CLI flag, test
// fixture) and then *checked* — never extended — at every expensive
// boundary it crosses: the thread-pool dequeue, each sweep cell, each
// profiling pass. Checks are cheap (one steady_clock read, no locks), so
// sprinkling them between cells costs nanoseconds while saving seconds of
// dead work once the client has already given up.
//
// Deadlines are shared by const pointer (`std::shared_ptr<const Deadline>`)
// so a request fanning out over a ThreadPool hands every cell the same
// budget without copies or ownership puzzles. A default-constructed or
// null deadline is unbounded: library callers that never opt in (knl-repro,
// the golden pipeline) see bit-identical behavior.
//
// `cancel()` trips the deadline immediately regardless of remaining
// budget — the same expiry path doubles as a cooperative cancellation
// primitive for graceful drain.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "core/fault/error.hpp"

namespace knl {

/// Stable error-code slug carried by every deadline failure; the service
/// layer maps it to HTTP 504.
inline constexpr const char* kDeadlineExceededCode = "deadline/exceeded";

class Deadline {
 public:
  /// Unbounded: never expires (unless cancelled).
  Deadline() = default;

  // Copyable despite the atomic flag (a copy carries the flag's value).
  Deadline(const Deadline& other)
      : start_(other.start_),
        budget_ms_(other.budget_ms_),
        bounded_(other.bounded_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  Deadline& operator=(const Deadline& other) {
    if (this != &other) {
      start_ = other.start_;
      budget_ms_ = other.budget_ms_;
      bounded_ = other.bounded_;
      cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    return *this;
  }

  /// Bounded: expires `budget_ms` milliseconds after construction. A
  /// non-positive budget is already expired — useful for tests and for
  /// clients that discover mid-retry their budget is gone.
  static Deadline after_ms(double budget_ms);

  /// Bounded deadline as a shared const handle — the shape SweepOptions
  /// and the service layer pass around. Returns nullptr when
  /// `budget_ms <= 0` is to be interpreted as "no deadline requested".
  static std::shared_ptr<const Deadline> shared_after_ms(double budget_ms);

  [[nodiscard]] bool bounded() const noexcept { return bounded_; }
  [[nodiscard]] double budget_ms() const noexcept { return budget_ms_; }

  /// Milliseconds since construction.
  [[nodiscard]] double elapsed_ms() const noexcept;

  /// Remaining budget in ms; +infinity when unbounded, clamped at 0 once
  /// expired.
  [[nodiscard]] double remaining_ms() const noexcept;

  /// True once the budget is spent or cancel() was called.
  [[nodiscard]] bool expired() const noexcept;

  /// Trip the deadline now. Safe from any thread; checks on other threads
  /// observe the expiry on their next call.
  void cancel() const noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Throw Error(Resource, "deadline/exceeded") when expired, annotated
  /// with `what` (e.g. "sweep cell 12/64"). Resource — not Transient — so
  /// retry loops never burn attempts re-running work the client already
  /// abandoned.
  void check(const std::string& what) const;

  /// Convenience for call sites holding the shared form: a null pointer is
  /// unbounded.
  static bool expired(const std::shared_ptr<const Deadline>& deadline) noexcept {
    return deadline != nullptr && deadline->expired();
  }

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point start_ = Clock::now();
  double budget_ms_ = 0.0;
  bool bounded_ = false;
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace knl
