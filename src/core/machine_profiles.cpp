#include "core/machine_profiles.hpp"

namespace knl {

const std::vector<MachineProfile>& machine_profiles() {
  static const std::vector<MachineProfile> profiles = {
      MachineProfile{.name = "knl7210",
                     .title = "KNL 7210 (paper testbed: 16 GiB MCDRAM + 96 GiB DDR4)",
                     .machine_file = "machines/knl7210.machine",
                     .golden_dir = "golden",
                     .make = &MachineConfig::knl7210,
                     .paper_checks = true},
      MachineProfile{.name = "xeonmax",
                     .title = "Xeon Max / Sapphire Rapids (64 GiB HBM2e + 512 GiB DDR5)",
                     .machine_file = "machines/xeonmax.machine",
                     .golden_dir = "golden/profiles/xeonmax",
                     .make = &MachineConfig::xeon_max},
      MachineProfile{.name = "knl_nvm",
                     .title = "KNL 7210 + 512 GiB NVM far tier (NUMA-emulation spill path)",
                     .machine_file = "machines/knl_nvm.machine",
                     .golden_dir = "golden/profiles/knl_nvm",
                     .make = &MachineConfig::knl_nvm},
  };
  return profiles;
}

const MachineProfile* find_machine_profile(const std::string& name) {
  for (const MachineProfile& profile : machine_profiles()) {
    if (profile.name == name) return &profile;
  }
  return nullptr;
}

std::string machine_profile_names() {
  std::string names;
  for (const MachineProfile& profile : machine_profiles()) {
    if (!names.empty()) names += ", ";
    names += profile.name;
  }
  return names;
}

}  // namespace knl
