#include "core/advisor.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/fault/error.hpp"

namespace knl {

trace::AccessProfile Advisor::synthesize(const AppCharacteristics& app) {
  if (app.footprint_bytes == 0) {
    throw std::invalid_argument("Advisor: footprint_bytes must be positive");
  }
  if (app.regular_fraction < 0.0 || app.regular_fraction > 1.0) {
    throw std::invalid_argument("Advisor: regular_fraction outside [0,1]");
  }

  trace::AccessProfile profile("advisor:" + app.name);
  profile.set_resident_bytes(app.footprint_bytes);

  // One representative "iteration" touching the footprint ten times keeps
  // relative timings independent of absolute work.
  const double logical = 10.0 * static_cast<double>(app.footprint_bytes);
  const double regular_bytes = logical * app.regular_fraction;
  const double random_bytes = logical - regular_bytes;

  if (regular_bytes > 0.0) {
    trace::AccessPhase seq;
    seq.name = "regular";
    seq.pattern = trace::Pattern::Sequential;
    seq.footprint_bytes = app.footprint_bytes;
    seq.logical_bytes = regular_bytes;
    seq.sweeps = std::max(1.0, 10.0 * app.regular_fraction);
    seq.flops = regular_bytes * app.flops_per_byte;
    seq.write_fraction = 0.3;
    profile.add(seq);
  }
  if (random_bytes > 0.0) {
    trace::AccessPhase rnd;
    rnd.name = "random";
    rnd.pattern = trace::Pattern::Random;
    rnd.footprint_bytes = app.footprint_bytes;
    rnd.logical_bytes = random_bytes;
    rnd.granule_bytes = app.random_granule_bytes;
    rnd.flops = random_bytes * app.flops_per_byte;
    profile.add(rnd);
  }
  return profile;
}

Advice Advisor::advise(const AppCharacteristics& app) const {
  const trace::AccessProfile profile = synthesize(app);

  // Baseline the paper normalizes against: DRAM with one thread per core.
  const RunResult base = machine_.run(profile, RunConfig{MemConfig::DRAM, 64, 0.0});
  if (!base.feasible || base.seconds <= 0.0) {
    throw Error::resource("advisor/baseline-infeasible",
                          "Advisor: baseline DRAM run infeasible — footprint " +
                              std::to_string(app.footprint_bytes) + " B exceeds DDR");
  }

  Advice advice;
  for (const MemConfig config :
       {MemConfig::DRAM, MemConfig::HBM, MemConfig::CacheMode}) {
    for (const int threads : {64, 128, 192, 256}) {
      if (threads > app.max_threads) continue;
      const RunResult r = machine_.run(profile, RunConfig{config, threads, 0.0});
      Recommendation rec;
      rec.config = config;
      rec.threads = threads;
      rec.feasible = r.feasible;
      if (r.feasible && r.seconds > 0.0) {
        rec.predicted_speedup_vs_dram64 = base.seconds / r.seconds;
      } else {
        rec.predicted_speedup_vs_dram64 = 0.0;
        rec.rationale = r.infeasible_reason;
      }
      advice.ranked.push_back(rec);
    }
  }
  std::stable_sort(advice.ranked.begin(), advice.ranked.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_speedup_vs_dram64 > b.predicted_speedup_vs_dram64;
                   });
  advice.best = advice.ranked.front();

  // Paper-style classification and rationale.
  const bool fits_hbm =
      app.footprint_bytes <= machine_.config().timing.hbm.capacity_bytes;
  std::ostringstream why;
  if (app.flops_per_byte > 8.0) {
    advice.classification = "compute-bound";
    why << "High arithmetic intensity: memory system choice is secondary; ";
  } else if (app.regular_fraction >= 0.5) {
    advice.classification = "bandwidth-bound";
    why << "Regular access dominates: prefetchable, so HBM's ~4x bandwidth pays off; ";
  } else {
    advice.classification = "latency-bound";
    why << "Random access dominates: few outstanding requests, so HBM's ~18% higher "
           "latency hurts unless hardware threads add concurrency; ";
  }
  if (!fits_hbm) {
    why << "footprint exceeds MCDRAM (" << app.footprint_bytes / GiB
        << " GiB > 16 GiB): flat HBM infeasible, cache mode degrades with size; ";
  }
  why << "best: " << to_string(advice.best.config) << " @ " << advice.best.threads
      << " threads (" << std::fixed << std::setprecision(2)
      << advice.best.predicted_speedup_vs_dram64 << "x vs DRAM@64).";
  advice.best.rationale = why.str();
  return advice;
}

}  // namespace knl
