// Figure: named series of (x, y) points with text/CSV rendering — the
// container every bench binary fills and prints, one per paper figure.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace knl::report {

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)), x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Append a point to `series` (created on first use, order preserved).
  void add(const std::string& series, double x, double y);

  [[nodiscard]] const std::vector<Series>& series() const noexcept { return series_; }
  [[nodiscard]] const Series* find(const std::string& name) const;

  /// y value of `series` at `x` (exact match), if present.
  [[nodiscard]] std::optional<double> value_at(const std::string& series, double x) const;

  /// Aligned text table: one row per distinct x, one column per series.
  /// Missing points render as "-" (the paper's "no measurement" bars).
  [[nodiscard]] std::string to_table() const;

  /// CSV with the same layout.
  [[nodiscard]] std::string to_csv() const;

  /// JSON object: {title, x_label, y_label, series: [{name, points: [[x,y]...]}]}.
  [[nodiscard]] std::string to_json() const;

  /// A self-contained gnuplot script (inline data blocks) that renders the
  /// figure with one line per series — paste into `gnuplot -p`.
  [[nodiscard]] std::string to_gnuplot() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace knl::report
