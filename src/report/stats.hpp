// Small statistics helpers used by the benchmark harness (Graph500 reports
// harmonic-mean TEPS; sweeps report min/max/mean).
#pragma once

#include <span>

namespace knl::report {

[[nodiscard]] double arithmetic_mean(std::span<const double> xs);
[[nodiscard]] double harmonic_mean(std::span<const double> xs);
[[nodiscard]] double geometric_mean(std::span<const double> xs);
[[nodiscard]] double minimum(std::span<const double> xs);
[[nodiscard]] double maximum(std::span<const double> xs);
/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

}  // namespace knl::report
