// Small statistics helpers used by the benchmark harness (Graph500 reports
// harmonic-mean TEPS; sweeps report min/max/mean).
#pragma once

#include <span>

namespace knl::report {

/// Plain average; 0 for an empty span.
[[nodiscard]] double arithmetic_mean(std::span<const double> xs);
/// n / sum(1/x) — the mean Graph500 uses for TEPS; 0 for an empty span.
[[nodiscard]] double harmonic_mean(std::span<const double> xs);
/// nth root of the product (computed in log space); 0 for an empty span.
[[nodiscard]] double geometric_mean(std::span<const double> xs);
/// Smallest element; 0 for an empty span.
[[nodiscard]] double minimum(std::span<const double> xs);
/// Largest element; 0 for an empty span.
[[nodiscard]] double maximum(std::span<const double> xs);
/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

}  // namespace knl::report
