#include "report/figure.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>

namespace knl::report {

void Figure::add(const std::string& series, double x, double y) {
  for (auto& s : series_) {
    if (s.name == series) {
      s.points.emplace_back(x, y);
      return;
    }
  }
  series_.push_back(Series{series, {{x, y}}});
}

const Series* Figure::find(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::optional<double> Figure::value_at(const std::string& series, double x) const {
  const Series* s = find(series);
  if (s == nullptr) return std::nullopt;
  for (const auto& [px, py] : s->points) {
    if (px == x) return py;
  }
  return std::nullopt;
}

namespace {

std::string format_value(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
  }
  return os.str();
}

}  // namespace

std::string Figure::to_table() const {
  std::set<double> xs;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) xs.insert(x);
  }

  // Column widths.
  std::vector<std::size_t> widths;
  widths.push_back(std::max<std::size_t>(x_label_.size(), 12));
  for (const auto& s : series_) widths.push_back(std::max<std::size_t>(s.name.size(), 12));

  std::ostringstream os;
  os << "# " << title_ << "  [y: " << y_label_ << "]\n";
  os << std::left << std::setw(static_cast<int>(widths[0])) << x_label_;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    os << "  " << std::setw(static_cast<int>(widths[i + 1])) << series_[i].name;
  }
  os << '\n';
  for (const double x : xs) {
    os << std::left << std::setw(static_cast<int>(widths[0])) << format_value(x);
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const auto v = value_at(series_[i].name, x);
      os << "  " << std::setw(static_cast<int>(widths[i + 1]))
         << (v.has_value() ? format_value(*v) : std::string("-"));
    }
    os << '\n';
  }
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string Figure::to_json() const {
  std::ostringstream os;
  os << "{\"title\":\"" << json_escape(title_) << "\",\"x_label\":\""
     << json_escape(x_label_) << "\",\"y_label\":\"" << json_escape(y_label_)
     << "\",\"series\":[";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s > 0) os << ',';
    os << "{\"name\":\"" << json_escape(series_[s].name) << "\",\"points\":[";
    for (std::size_t i = 0; i < series_[s].points.size(); ++i) {
      if (i > 0) os << ',';
      os << '[' << series_[s].points[i].first << ',' << series_[s].points[i].second
         << ']';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string Figure::to_gnuplot() const {
  std::ostringstream os;
  os << "set title \"" << title_ << "\"\n";
  os << "set xlabel \"" << x_label_ << "\"\n";
  os << "set ylabel \"" << y_label_ << "\"\n";
  os << "set key outside\n";
  for (const auto& s : series_) {
    os << "$" << 'd' << (&s - series_.data()) << " << EOD\n";
    for (const auto& [x, y] : s.points) os << x << ' ' << y << '\n';
    os << "EOD\n";
  }
  os << "plot ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "$d" << i << " using 1:2 with linespoints title \"" << series_[i].name
       << "\"";
  }
  os << '\n';
  return os.str();
}

std::string Figure::to_csv() const {
  std::set<double> xs;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) xs.insert(x);
  }
  std::ostringstream os;
  os << x_label_;
  for (const auto& s : series_) os << ',' << s.name;
  os << '\n';
  for (const double x : xs) {
    os << format_value(x);
    for (const auto& s : series_) {
      const auto v = value_at(s.name, x);
      os << ',' << (v.has_value() ? format_value(*v) : std::string());
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace knl::report
