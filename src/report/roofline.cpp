#include "report/roofline.hpp"

#include <cmath>
#include <stdexcept>

#include "core/fault/error.hpp"
#include "sim/knl_params.hpp"

namespace knl::report {

Roofline::Roofline(const Machine& machine, MemConfig config, int threads)
    : machine_(machine), config_(config), threads_(threads) {
  if (threads_ < 1) throw std::invalid_argument("Roofline: threads must be >= 1");
  const int ht = machine_.timing().ht_per_core(threads_);
  peak_gflops_ = params::attainable_gflops(ht);

  // Memory slope: run a pure streaming probe through the machine under
  // this configuration (4 GiB footprint: beyond caches, within MCDRAM).
  trace::AccessProfile probe("roofline-probe");
  trace::AccessPhase phase;
  phase.name = "stream";
  phase.pattern = trace::Pattern::Sequential;
  phase.footprint_bytes = 4 * GiB;
  phase.logical_bytes = 40e9;
  phase.sweeps = 10;
  probe.add(phase);
  const RunResult r = machine_.run(probe, RunConfig{config_, threads_});
  if (!r.feasible || r.seconds <= 0.0) {
    throw Error::resource("roofline/probe-infeasible",
                          "Roofline: streaming probe infeasible");
  }
  stream_bw_gbs_ = phase.logical_bytes / (r.seconds * 1e9);
}

double Roofline::attainable_gflops(double intensity) const {
  if (intensity < 0.0) throw std::invalid_argument("Roofline: negative intensity");
  return std::min(peak_gflops_, stream_bw_gbs_ * intensity);
}

double Roofline::ridge_intensity() const { return peak_gflops_ / stream_bw_gbs_; }

std::vector<std::pair<double, double>> Roofline::curve(double lo, double hi,
                                                       int points) const {
  if (lo <= 0.0 || hi <= lo || points < 2) {
    throw std::invalid_argument("Roofline::curve: bad range");
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(points));
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) {
    const double x = lo * std::exp(step * i);
    out.emplace_back(x, attainable_gflops(x));
  }
  return out;
}

Roofline::Placement Roofline::classify(const workloads::Workload& workload) const {
  const auto profile = workload.profile();
  const auto& timing = machine_.timing();
  double flops = 0.0;
  double bytes = 0.0;
  for (const auto& phase : profile.phases()) {
    flops += phase.flops;
    bytes += timing.memory_traffic_bytes(phase, threads_);
  }
  // Kernel-achievable roof: the flop-weighted compute efficiency of the
  // profile's phases scales the machine peak.
  double eff_weighted = 0.0;
  for (const auto& phase : profile.phases()) {
    eff_weighted += phase.flops * phase.compute_efficiency;
  }
  const double efficiency = flops > 0.0 ? eff_weighted / flops : 1.0;

  Placement placement;
  placement.kernel_roof_gflops = peak_gflops_ * efficiency;
  if (bytes <= 0.0) {
    placement.compute_bound = true;
    placement.attainable_gflops = placement.kernel_roof_gflops;
    return placement;
  }
  placement.intensity = flops / bytes;
  placement.attainable_gflops =
      std::min(placement.kernel_roof_gflops, stream_bw_gbs_ * placement.intensity);
  placement.compute_bound =
      stream_bw_gbs_ * placement.intensity >= placement.kernel_roof_gflops;
  return placement;
}

Figure Roofline::chart(const Machine& machine, int threads,
                       const std::vector<const workloads::Workload*>& marks) {
  Figure figure("Roofline, " + std::to_string(threads) + " threads",
                "flops/byte", "GFLOPS");
  for (const MemConfig config :
       {MemConfig::DRAM, MemConfig::HBM, MemConfig::CacheMode}) {
    const Roofline roof(machine, config, threads);
    for (const auto& [x, y] : roof.curve(0.01, 100.0, 33)) {
      figure.add(to_string(config) + " roof", x, y);
    }
  }
  const Roofline ddr_roof(machine, MemConfig::DRAM, threads);
  for (const workloads::Workload* w : marks) {
    const auto placement = ddr_roof.classify(*w);
    figure.add(w->info().name, placement.intensity, placement.attainable_gflops);
  }
  return figure;
}

}  // namespace knl::report
