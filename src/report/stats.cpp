#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace knl::report {

namespace {
void require_nonempty(std::span<const double> xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
}  // namespace

double arithmetic_mean(std::span<const double> xs) {
  require_nonempty(xs, "arithmetic_mean");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  require_nonempty(xs, "harmonic_mean");
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("harmonic_mean: non-positive value");
    acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / acc;
}

double geometric_mean(std::span<const double> xs) {
  require_nonempty(xs, "geometric_mean");
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: non-positive value");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double minimum(std::span<const double> xs) {
  require_nonempty(xs, "minimum");
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) {
  require_nonempty(xs, "maximum");
  return *std::max_element(xs.begin(), xs.end());
}

double stddev(std::span<const double> xs) {
  require_nonempty(xs, "stddev");
  const double mean = arithmetic_mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace knl::report
