// Sweep runner: the common loop of every bench binary — run a workload
// across problem sizes or thread counts under the paper's three memory
// configurations and collect a Figure.
//
// The engine enumerates the full (size-or-threads × config) grid as
// independent cells, evaluates them on a work-stealing thread pool
// (core/thread_pool.hpp), and merges results into the Figure in grid order —
// so the output is bit-identical whatever the job count. A process-wide
// memoization cache keyed on (profile content, machine fingerprint, memory
// config, thread count) makes repeated cells — across figures, across
// sweeps, and via save()/load() across bench-binary runs — free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fault/deadline.hpp"
#include "core/fault/error.hpp"
#include "core/fault/retry.hpp"
#include "core/machine.hpp"
#include "report/figure.hpp"
#include "trace/synth.hpp"
#include "workloads/workload.hpp"

namespace knl::sim {
class ReuseProfile;  // sim/reuse_profile.hpp (sweep.cpp includes it)
}

namespace knl::report {

using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(std::uint64_t bytes)>;

inline const std::vector<MemConfig> kAllConfigs{MemConfig::DRAM, MemConfig::HBM,
                                                MemConfig::CacheMode};

/// Execution knobs of one sweep call. The defaults reproduce the classic
/// serial engine exactly (and they must: determinism tests compare the two).
struct SweepOptions {
  /// Worker threads for cell evaluation: 1 = evaluate inline on the calling
  /// thread (no pool), 0 = one worker per hardware thread, N = N workers.
  int jobs = 1;
  /// Consult and populate the process-wide SweepCache. Results are
  /// unchanged either way (the model is deterministic); turning this off
  /// only forces re-evaluation.
  bool memoize = true;
  /// Per-cell retry of Transient knl::Errors (injected faults, flaky IO):
  /// bounded exponential backoff with deterministic jitter, keyed by cell
  /// index so retry counters are exact for any job count.
  fault::RetryPolicy retry{};
  /// Watchdog: > 0 arms a per-cell wall-time deadline (milliseconds). A
  /// cell that overruns it on the parallel path is re-evaluated serially
  /// (where it has the machine to itself) — the graceful parallel->serial
  /// fallback; 0 disables the watchdog.
  double cell_deadline_ms = 0.0;
  /// Capacity sweeps (SweepPlanner): derive every cell of a grid from one
  /// reuse-distance profiling pass over the trace (exact by LRU inclusion;
  /// the default). false selects the retained per-cell reference path that
  /// re-replays the trace through the exact simulator for every capacity.
  bool single_pass = true;
  /// Request-scoped wall-clock budget, checked between cells (and before
  /// each profiling pass). When it expires, remaining cells fail fast with
  /// code "deadline/exceeded" instead of computing dead work; completed
  /// cells keep their points. nullptr (the default) is unbounded — the
  /// golden/repro pipeline never sets one, so results are bit-identical.
  std::shared_ptr<const Deadline> deadline = nullptr;
  /// Brownout mode: serve cells from the SweepCache only. A cell whose key
  /// is not resident fails with code "sweep/cache-only-miss" instead of
  /// simulating; capacity grids derive from resident reuse profiles only
  /// (no trace synthesis, no profiling passes).
  bool cache_only = false;
};

/// Counters describing how a sweep call spent its time. `cells` is the full
/// grid; every cell is either `evaluated` (simulated now), a `cache_hit`
/// (reused from the SweepCache), and possibly `infeasible` (no Figure point,
/// matching the paper's missing bars).
struct SweepStats {
  std::size_t cells = 0;
  std::size_t evaluated = 0;
  std::size_t cache_hits = 0;
  std::size_t infeasible = 0;
  /// Sum of per-cell evaluation wall times (what a serial engine would pay).
  double cell_seconds = 0.0;
  /// Wall time of the whole sweep call, dispatch and merge included.
  double wall_seconds = 0.0;
  /// Transient-fault retries performed (exact: keyed injection makes this a
  /// pure function of the armed fault plan, not of the job count).
  std::size_t retries = 0;
  /// Cells that still failed after the retry budget; their errors are in
  /// SweepRun::failures, the surviving cells' points are in the figure.
  std::size_t failed = 0;
  /// Cells that overran the watchdog deadline (timing-dependent by nature).
  std::size_t watchdog_trips = 0;
  /// Whole-grid parallel->serial fallbacks after a substrate (pool) fault.
  std::size_t serial_fallbacks = 0;
  /// Single-pass accounting (capacity sweeps only): profiling passes
  /// computed now, passes served from the profile cache, and grid cells
  /// answered from a profile histogram instead of a per-cell replay.
  std::size_t profile_passes = 0;
  std::size_t profile_hits = 0;
  std::size_t cells_derived = 0;

  /// One-line human-readable rendering for bench logs / EXPERIMENTS.md.
  [[nodiscard]] std::string summary() const;

  /// Accumulate another sweep's counters (wall times add; a multi-sweep
  /// bench binary reports the total).
  SweepStats& operator+=(const SweepStats& other);
};

/// One cell that failed for good (retry budget exhausted or non-transient
/// error). The sweep keeps going: every failure is collected, never just the
/// first, and the surviving cells' points still land in the figure.
struct CellFailure {
  /// Grid index of the cell (row-major over the outer x × config grid).
  std::size_t index = 0;
  /// Human label, e.g. "stream @ 1 GiB / HBM" or "threads=16 / CacheMode".
  std::string label;
  ErrorCategory category = ErrorCategory::Internal;
  std::string message;
};

/// A completed sweep: the figure plus the engine's accounting. `failures`
/// is empty on a clean run; callers that must not tolerate holes check it
/// (the repro pipeline turns a non-empty list into one aggregate error
/// naming every failed cell).
struct SweepRun {
  Figure figure;
  SweepStats stats;
  std::vector<CellFailure> failures;
};

/// Memoization key of one grid cell. The profile hash covers every
/// timing-relevant field of every phase plus the resident footprint, so two
/// workloads with identical memory behaviour share entries and any profile
/// change misses; the machine hash is MachineConfig::fingerprint().
struct SweepKey {
  std::uint64_t profile_hash = 0;
  std::uint64_t machine_hash = 0;
  MemConfig config = MemConfig::DRAM;
  int threads = 0;

  friend bool operator==(const SweepKey&, const SweepKey&) = default;
};

struct SweepKeyHash {
  [[nodiscard]] std::size_t operator()(const SweepKey& key) const noexcept;
};

/// FNV-1a content hash of an AccessProfile: resident bytes plus every
/// numeric/pattern field of every phase, in order. Phase and profile *names*
/// are excluded — they are labels, not timing inputs.
[[nodiscard]] std::uint64_t profile_fingerprint(const trace::AccessProfile& profile);

/// Observability counters of the SweepCache, readable at any time (values
/// are individually atomic; a snapshot taken under load is approximate
/// across fields but each field is exact).
struct SweepCacheStats {
  std::size_t hits = 0;       ///< lookups served from a resident entry
  std::size_t misses = 0;     ///< lookups that had to compute (or found nothing)
  std::size_t evictions = 0;  ///< entries dropped to honor the capacity bound
  std::size_t coalesced = 0;  ///< queries that waited on an identical in-flight
                              ///< computation instead of recomputing
  std::size_t inserts = 0;    ///< store() calls (first-time + overwrites)
  std::size_t entries = 0;    ///< resident entries right now
  std::size_t capacity = 0;   ///< configured bound (entries)
  std::size_t shards = 0;     ///< shard count (compile-time constant)
  /// Reuse-distance profile side of the cache (single-pass sweeps). A hit
  /// here answers a whole capacity grid — including grids *different* from
  /// the one that populated the entry — without replaying the trace.
  std::size_t profile_hits = 0;
  std::size_t profile_misses = 0;
  std::size_t profile_inserts = 0;
  std::size_t profile_evictions = 0;
  std::size_t profile_coalesced = 0;
  std::size_t profile_entries = 0;
  std::size_t profile_capacity = 0;
};

/// Fingerprint of one profiling pass: which trace (profile content +
/// synthesis budget/seed), on which machine, at which thread count, under
/// which cache geometry. Grids sharing a key share one pass.
struct ProfileKey {
  std::uint64_t trace_hash = 0;
  std::uint64_t machine_hash = 0;
  int threads = 0;
  std::uint64_t geometry_hash = 0;

  friend bool operator==(const ProfileKey&, const ProfileKey&) = default;
};

struct ProfileKeyHash {
  [[nodiscard]] std::size_t operator()(const ProfileKey& key) const noexcept;
};

/// Process-wide memoized simulation results, shared by every sweep — and,
/// since the service layer, by every concurrent query — in the process.
///
/// The cache is *sharded*: keys hash to one of kShardCount independent
/// shards, each with its own mutex, LRU list and index, so concurrent
/// queries contend only when they land on the same shard. Each shard is
/// *bounded*: beyond its slice of the capacity, the least-recently-used
/// entry is evicted (the classic two-level ram_cache/page_stats_table
/// discipline: hot results resident, cold ones recomputed on demand).
/// Identical concurrent misses are *coalesced*: the first caller computes,
/// the rest wait on its future — a thundering herd of equal (profile,
/// machine, config, threads) fingerprints costs one simulation.
///
/// save()/load() persist entries as a text file (hex-float exact
/// round-trip), so a bench binary run with `--cache FILE` starts warm on
/// its second invocation. The file header records the machine-profile
/// schema version; a file written under another schema is rejected as a
/// benign cold start.
class SweepCache {
 public:
  /// Shards (power of two; keys use the top hash bits so shard choice is
  /// independent of the per-shard bucket choice).
  static constexpr std::size_t kShardCount = 16;
  /// Default capacity bound, in entries. A RunResult is ~100 bytes, so the
  /// default caps the cache at a few MiB while holding every cell of every
  /// registry experiment many times over.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;
  /// Bound on resident reuse-distance profiles. A profile is a histogram of
  /// up to max_depth buckets (typically a few thousand live ones), so this
  /// caps the profile side at a few MiB as well. Profiles are process-local
  /// only: save()/load() persist RunResults, never profiles.
  static constexpr std::size_t kDefaultProfileCapacity = 128;

  /// Profiles are immutable once computed and shared by reference: a grid
  /// hit hands out the same histogram the profiling pass produced.
  using ProfilePtr = std::shared_ptr<const sim::ReuseProfile>;

  static SweepCache& instance();

  [[nodiscard]] std::optional<RunResult> lookup(const SweepKey& key) const;
  void store(const SweepKey& key, const RunResult& result);

  /// The coalescing read-through path: returns the cached result, else
  /// computes via `compute` and stores. Concurrent callers with the same
  /// key while a computation is in flight wait for it and share its result
  /// (or its exception) — `compute` runs exactly once per herd. Sets
  /// `*cache_hit` to false only for the caller that actually computed.
  [[nodiscard]] RunResult fetch_or_compute(const SweepKey& key,
                                           const std::function<RunResult()>& compute,
                                           bool* cache_hit = nullptr);

  /// Profile-side read path: nullptr on miss.
  [[nodiscard]] ProfilePtr lookup_profile(const ProfileKey& key) const;
  /// Coalescing read-through for profiling passes, mirroring
  /// fetch_or_compute: one pass per herd of identical keys, `*cache_hit`
  /// false only for the caller that actually replayed the trace.
  [[nodiscard]] ProfilePtr fetch_or_compute_profile(
      const ProfileKey& key, const std::function<ProfilePtr()>& compute,
      bool* cache_hit = nullptr);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Re-bound the cache (rounded up to a multiple of kShardCount, min one
  /// entry per shard), evicting LRU entries that no longer fit.
  void set_capacity(std::size_t max_entries);
  void clear();

  [[nodiscard]] SweepCacheStats stats() const;
  void reset_stats();

  /// Merge entries from `path` (written by save). Returns false when the
  /// file is absent, malformed, or written under a different
  /// machine-profile schema version — all benign cold-cache starts.
  bool load(const std::string& path);
  /// Write every entry to `path`, replacing it. Returns false on I/O error.
  [[nodiscard]] bool save(const std::string& path) const;

  /// The save() file rendered as a string (header + one line per entry, in
  /// shard/LRU order) — the payload snapshots wrap with a digest line.
  [[nodiscard]] std::string serialize() const;
  /// Merge entries from a serialize() payload. Returns false when the
  /// header is missing or from another machine-profile schema version.
  bool deserialize(const std::string& text);

 private:
  struct Entry {
    SweepKey key;
    RunResult result;
  };
  /// One shard: mutex, LRU list (front = most recent), index into it, and
  /// the in-flight table coalescing concurrent identical misses.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<SweepKey, std::list<Entry>::iterator, SweepKeyHash> index;
    std::unordered_map<SweepKey, std::shared_future<RunResult>, SweepKeyHash> inflight;
  };
  struct ProfileEntry {
    ProfileKey key;
    ProfilePtr profile;
  };
  /// Profile shard: same discipline as Shard, holding shared immutable
  /// histograms instead of RunResults.
  struct ProfileShard {
    mutable std::mutex mutex;
    std::list<ProfileEntry> lru;
    std::unordered_map<ProfileKey, std::list<ProfileEntry>::iterator, ProfileKeyHash>
        index;
    std::unordered_map<ProfileKey, std::shared_future<ProfilePtr>, ProfileKeyHash>
        inflight;
  };

  SweepCache() = default;

  [[nodiscard]] Shard& shard_for(const SweepKey& key) const;
  [[nodiscard]] ProfileShard& profile_shard_for(const ProfileKey& key) const;
  /// Insert/refresh under the shard lock, evicting past the per-shard bound.
  void store_locked(Shard& shard, const SweepKey& key, const RunResult& result);
  void store_profile_locked(ProfileShard& shard, const ProfileKey& key,
                            const ProfilePtr& profile);
  [[nodiscard]] std::size_t shard_capacity() const {
    return capacity_.load(std::memory_order_relaxed) / kShardCount;
  }
  [[nodiscard]] std::size_t profile_shard_capacity() const {
    return profile_capacity_.load(std::memory_order_relaxed) / kShardCount;
  }

  mutable std::array<Shard, kShardCount> shards_;
  mutable std::array<ProfileShard, kShardCount> profile_shards_;
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::size_t> profile_capacity_{kDefaultProfileCapacity};
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> coalesced_{0};
  std::atomic<std::size_t> inserts_{0};
  mutable std::atomic<std::size_t> profile_hits_{0};
  mutable std::atomic<std::size_t> profile_misses_{0};
  std::atomic<std::size_t> profile_evictions_{0};
  std::atomic<std::size_t> profile_coalesced_{0};
  std::atomic<std::size_t> profile_inserts_{0};
};

/// Run one (profile, run-config) cell through the memoization cache: on a
/// hit returns the cached RunResult, otherwise simulates and stores. Sets
/// `*cache_hit` accordingly when non-null. The building block the sweep
/// engine uses per cell, exposed for benches with bespoke grids (Fig. 5's
/// per-hardware-thread series).
[[nodiscard]] RunResult cached_run(const Machine& machine,
                                   const trace::AccessProfile& profile,
                                   const RunConfig& run_config,
                                   bool* cache_hit = nullptr);

/// Cache-only probe of the same key cached_run uses: the resident result,
/// or nullopt without simulating anything. The brownout path of degraded
/// sweeps (SweepOptions::cache_only).
[[nodiscard]] std::optional<RunResult> cached_lookup(
    const Machine& machine, const trace::AccessProfile& profile,
    const RunConfig& run_config);

/// Fig. 4-style sweep: metric vs problem size for each memory config at a
/// fixed thread count. Infeasible runs (e.g. HBM beyond 16 GB) are omitted,
/// matching the paper's missing bars. Cells run on `options.jobs` workers;
/// the factory must therefore be callable concurrently and deterministic
/// (same bytes -> same workload), which holds for every registry workload.
[[nodiscard]] SweepRun sweep_sizes_run(const Machine& machine,
                                       const WorkloadFactory& factory,
                                       const std::vector<std::uint64_t>& sizes_bytes,
                                       int threads,
                                       const std::vector<MemConfig>& configs,
                                       Figure figure, const SweepOptions& options = {});

/// Fig. 6-style sweep: metric vs thread count for a fixed problem size.
/// The workload's const interface is invoked concurrently across cells.
[[nodiscard]] SweepRun sweep_threads_run(const Machine& machine,
                                         const workloads::Workload& workload,
                                         const std::vector<int>& thread_counts,
                                         const std::vector<MemConfig>& configs,
                                         Figure figure,
                                         const SweepOptions& options = {});

/// Classic serial-signature sweep (kept for existing callers and tests):
/// exactly sweep_sizes_run(...).figure with default options.
[[nodiscard]] Figure sweep_sizes(const Machine& machine, const WorkloadFactory& factory,
                                 const std::vector<std::uint64_t>& sizes_bytes,
                                 int threads, const std::vector<MemConfig>& configs,
                                 Figure figure);

/// Classic serial-signature thread sweep; see sweep_threads_run.
[[nodiscard]] Figure sweep_threads(const Machine& machine,
                                   const workloads::Workload& workload,
                                   const std::vector<int>& thread_counts,
                                   const std::vector<MemConfig>& configs, Figure figure);

/// Add "speedup vs first x" series (the black improvement lines of the
/// paper's figures): for each existing series, appends a new series named
/// "<name> speedup" normalized to that series' first point. Series that are
/// empty or whose first point is <= 0 are skipped; an empty figure is a
/// no-op.
void add_self_speedup_series(Figure& figure);

/// Add a series of ratios between two existing series (e.g. the Fig. 4b
/// "Speedup by HBM w.r.t. DRAM" line). Points exist where both series do;
/// when either input series is missing, or the two share no x, no series is
/// created.
void add_ratio_series(Figure& figure, const std::string& numerator,
                      const std::string& denominator, const std::string& name);

// ---------------------------------------------------------------------------
// Single-pass capacity sweeps
// ---------------------------------------------------------------------------

/// Fault-injection key space of profiling passes at kSiteSweepCell. Grid
/// cells are keyed by their grid index (< 2^20 in practice: the service
/// bounds grids at max_sweep_cells, benches at a few hundred), so offsetting
/// pass ordinals past this base keeps the two key populations disjoint —
/// a plan targeting key kProfilePassKeyBase+N hits pass N and no cell.
inline constexpr std::uint64_t kProfilePassKeyBase = 1ull << 20;

/// One MCDRAM-capacity grid: simulate the workload's trace against an LRU
/// cache of each candidate capacity at fixed geometry. Capacities must be
/// multiples of line_bytes * num_sets (integral associativity).
struct CapacityGrid {
  std::vector<std::uint64_t> capacities_bytes;
  /// Cache geometry shared by every cell (what makes one pass answer all of
  /// them: at fixed (line, sets, sampling), capacity only varies the ways).
  std::uint64_t line_bytes = 64;
  std::uint64_t num_sets = 1ull << 15;
  std::uint64_t sample_every = 1;
  /// Trace synthesis budget/seed; part of the profile fingerprint.
  trace::SynthOptions synth{};
};

/// Default capacity axis for a declared topology: `points` equal steps up to
/// the capacity of the cache-capable tier fronting the topology's DRAM tier
/// (the fast tier when nothing is cache-capable), each aligned down to a
/// multiple of `set_bytes` (= line_bytes * num_sets) so every entry is a
/// legal set-associative capacity. Duplicate/zero steps collapse, so small
/// tiers yield fewer than `points` entries.
[[nodiscard]] std::vector<std::uint64_t> default_capacity_axis(
    const sim::MemoryTopology& topology, std::uint64_t set_bytes,
    std::size_t points = 8);

/// CapacityGrid whose axis is default_capacity_axis() at the grid's default
/// geometry — the "sweep the declared front tier" one-liner.
[[nodiscard]] CapacityGrid default_capacity_grid(const sim::MemoryTopology& topology,
                                                 std::size_t points = 8);

/// One evaluated capacity cell: the exact hit rate at this capacity plus the
/// derived timing (McdramCacheModel blend of the machine's HBM/DDR params).
struct CapacityCell {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t ways = 0;
  double hit_rate = 0.0;
  double effective_bw_gbs = 0.0;
  double avg_latency_ns = 0.0;
  double seconds = 0.0;
  /// True when this cell was derived from a profile histogram (single-pass
  /// path); false when it came from a per-cell reference replay.
  bool profile_hit = false;
};

/// A completed capacity sweep: cells in grid order, a figure with
/// "MCDRAM$ hit rate" and "effective GB/s" series vs capacity (GB), and the
/// engine accounting (profile_passes / profile_hits / cells_derived live in
/// stats).
struct CapacitySweepRun {
  Figure figure;
  std::vector<CapacityCell> cells;
  SweepStats stats;
  std::vector<CellFailure> failures;
};

/// Batches capacity-sweep requests and coalesces all grids sharing a
/// (trace, machine, threads, geometry) fingerprint onto ONE profiling pass,
/// then derives every cell of every grid analytically from the shared
/// reuse-distance histogram (Mattson: at fixed geometry, an access hits a
/// W-way LRU set iff its per-set stack distance is < W, so one histogram
/// answers every capacity). Passes and results go through the SweepCache,
/// so a later planner — or a service /sweep query with a different grid —
/// hits the same profile.
///
/// With options.single_pass == false every cell replays the trace through
/// the exact per-cell simulator instead (the retained reference path); the
/// two paths produce identical cells wherever LRU inclusion holds, which is
/// everywhere the planner can run (the profile and the reference simulate
/// the same set-associative LRU).
class SweepPlanner {
 public:
  explicit SweepPlanner(SweepOptions options = {});
  ~SweepPlanner();

  SweepPlanner(const SweepPlanner&) = delete;
  SweepPlanner& operator=(const SweepPlanner&) = delete;

  /// Queue one grid; returns its slot in the vector run() returns. The
  /// machine reference must outlive run().
  std::size_t add(const Machine& machine, const trace::AccessProfile& profile,
                  int threads, CapacityGrid grid, Figure figure);

  /// Execute every queued grid (profiling passes first, grouped by
  /// fingerprint; then cell derivation) and clear the queue. Results are in
  /// add() order and bit-identical for any jobs count.
  [[nodiscard]] std::vector<CapacitySweepRun> run();

 private:
  struct Request;
  SweepOptions options_;
  std::vector<Request> requests_;
};

/// One-grid convenience wrapper over SweepPlanner.
[[nodiscard]] CapacitySweepRun sweep_capacities_run(
    const Machine& machine, const trace::AccessProfile& profile, int threads,
    CapacityGrid grid, Figure figure, const SweepOptions& options = {});

}  // namespace knl::report
