// Sweep runner: the common loop of every bench binary — run a workload
// across problem sizes or thread counts under the paper's three memory
// configurations and collect a Figure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "report/figure.hpp"
#include "workloads/workload.hpp"

namespace knl::report {

using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(std::uint64_t bytes)>;

inline const std::vector<MemConfig> kAllConfigs{MemConfig::DRAM, MemConfig::HBM,
                                                MemConfig::CacheMode};

/// Fig. 4-style sweep: metric vs problem size for each memory config at a
/// fixed thread count. Infeasible runs (e.g. HBM beyond 16 GB) are omitted,
/// matching the paper's missing bars.
[[nodiscard]] Figure sweep_sizes(const Machine& machine, const WorkloadFactory& factory,
                                 const std::vector<std::uint64_t>& sizes_bytes,
                                 int threads, const std::vector<MemConfig>& configs,
                                 Figure figure);

/// Fig. 6-style sweep: metric vs thread count for a fixed problem size.
[[nodiscard]] Figure sweep_threads(const Machine& machine,
                                   const workloads::Workload& workload,
                                   const std::vector<int>& thread_counts,
                                   const std::vector<MemConfig>& configs, Figure figure);

/// Add "speedup vs first x" series (the black improvement lines of the
/// paper's figures): for each existing series, appends a new series named
/// "<name> speedup" normalized to that series' first point.
void add_self_speedup_series(Figure& figure);

/// Add a series of ratios between two existing series (e.g. the Fig. 4b
/// "Speedup by HBM w.r.t. DRAM" line). Points exist where both series do.
void add_ratio_series(Figure& figure, const std::string& numerator,
                      const std::string& denominator, const std::string& name);

}  // namespace knl::report
