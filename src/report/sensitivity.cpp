#include "report/sensitivity.hpp"

#include <stdexcept>

#include "core/machine.hpp"
#include "workloads/gups.hpp"
#include "workloads/minife.hpp"
#include "workloads/xsbench.hpp"

namespace knl::report {

std::vector<NamedPerturbation> standard_perturbations() {
  return {
      {"hbm_latency",
       [](MachineConfig& cfg, double d) { cfg.timing.hbm.idle_latency_ns *= 1.0 + d; }},
      {"ddr_latency",
       [](MachineConfig& cfg, double d) { cfg.timing.ddr.idle_latency_ns *= 1.0 + d; }},
      {"hbm_stream_bw",
       [](MachineConfig& cfg, double d) { cfg.timing.hbm.stream_bw_gbs *= 1.0 + d; }},
      {"ddr_stream_bw",
       [](MachineConfig& cfg, double d) { cfg.timing.ddr.stream_bw_gbs *= 1.0 + d; }},
      {"ddr_random_bw",
       [](MachineConfig& cfg, double d) { cfg.timing.ddr.random_bw_gbs *= 1.0 + d; }},
      {"seq_mlp",
       [](MachineConfig& cfg, double d) { cfg.timing.seq_mlp_per_core *= 1.0 + d; }},
      {"rand_mlp",
       [](MachineConfig& cfg, double d) { cfg.timing.rand_mlp_per_thread *= 1.0 + d; }},
      {"mcdram_sweep_knee",
       [](MachineConfig& cfg, double d) { cfg.timing.mcdram.sweep_knee *= 1.0 + d; }},
  };
}

std::vector<SensitivityRow> sensitivity_sweep(
    const MachineConfig& base, const std::vector<NamedPerturbation>& perturbations,
    const std::vector<double>& deltas, const Conclusion& conclusion) {
  if (!conclusion) throw std::invalid_argument("sensitivity_sweep: null conclusion");
  std::vector<SensitivityRow> rows;
  rows.reserve(perturbations.size() * deltas.size());
  for (const auto& perturbation : perturbations) {
    for (const double delta : deltas) {
      MachineConfig cfg = base;
      perturbation.apply(cfg, delta);
      SensitivityRow row;
      row.parameter = perturbation.name;
      row.delta = delta;
      row.holds = conclusion(cfg);
      rows.push_back(row);
    }
  }
  return rows;
}

bool all_hold(const std::vector<SensitivityRow>& rows) {
  for (const auto& row : rows) {
    if (!row.holds) return false;
  }
  return true;
}

namespace conclusions {

Conclusion minife_hbm_speedup_at_least(double factor) {
  return [factor](const MachineConfig& cfg) {
    const Machine machine(cfg);
    const auto minife =
        workloads::MiniFe::from_footprint(static_cast<std::uint64_t>(7.2e9));
    const auto profile = minife.profile();
    const RunResult dram = machine.run(profile, RunConfig{MemConfig::DRAM, 64});
    const RunResult hbm = machine.run(profile, RunConfig{MemConfig::HBM, 64});
    if (!dram.feasible || !hbm.feasible || hbm.seconds <= 0.0) return false;
    return dram.seconds / hbm.seconds >= factor;
  };
}

Conclusion gups_prefers_dram() {
  return [](const MachineConfig& cfg) {
    const Machine machine(cfg);
    const workloads::Gups gups(8ull << 30);
    const auto profile = gups.profile();
    const RunResult dram = machine.run(profile, RunConfig{MemConfig::DRAM, 64});
    const RunResult hbm = machine.run(profile, RunConfig{MemConfig::HBM, 64});
    return dram.feasible && hbm.feasible && dram.seconds < hbm.seconds;
  };
}

Conclusion xsbench_crossover_at_256() {
  return [](const MachineConfig& cfg) {
    const Machine machine(cfg);
    const auto xs = workloads::XsBench::from_footprint(static_cast<std::uint64_t>(5.6e9));
    const auto profile = xs.profile();
    const RunResult dram64 = machine.run(profile, RunConfig{MemConfig::DRAM, 64});
    const RunResult hbm64 = machine.run(profile, RunConfig{MemConfig::HBM, 64});
    const RunResult dram256 = machine.run(profile, RunConfig{MemConfig::DRAM, 256});
    const RunResult hbm256 = machine.run(profile, RunConfig{MemConfig::HBM, 256});
    if (!dram64.feasible || !hbm64.feasible || !dram256.feasible || !hbm256.feasible) {
      return false;
    }
    // DRAM wins at one thread/core; HBM wins with full SMT.
    return dram64.seconds < hbm64.seconds && hbm256.seconds < dram256.seconds;
  };
}

}  // namespace conclusions

}  // namespace knl::report
