// Calibration sensitivity analysis.
//
// The machine model's constants come from the paper's measurements; a fair
// question is whether the reproduced *conclusions* (who wins, where the
// crossovers sit) depend delicately on those constants. This module
// perturbs named calibration parameters by a relative amount, rebuilds the
// machine, and re-evaluates a conclusion predicate — reporting the range
// over which each conclusion survives.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/machine_config.hpp"

namespace knl::report {

/// Mutates one calibration parameter by relative `delta` (e.g. +0.1 = +10%).
using Perturbation = std::function<void(MachineConfig&, double delta)>;

struct NamedPerturbation {
  std::string name;
  Perturbation apply;
};

/// The calibration knobs worth stressing: node latencies, bandwidth caps,
/// MLP, and the MCDRAM-cache sweep knee.
[[nodiscard]] std::vector<NamedPerturbation> standard_perturbations();

/// A conclusion: evaluated on a machine, true if it (still) holds.
using Conclusion = std::function<bool(const MachineConfig&)>;

struct SensitivityRow {
  std::string parameter;
  double delta = 0.0;
  bool holds = false;
};

/// Evaluate `conclusion` under every (perturbation x delta) combination.
[[nodiscard]] std::vector<SensitivityRow> sensitivity_sweep(
    const MachineConfig& base, const std::vector<NamedPerturbation>& perturbations,
    const std::vector<double>& deltas, const Conclusion& conclusion);

/// True if the conclusion holds for every row.
[[nodiscard]] bool all_hold(const std::vector<SensitivityRow>& rows);

/// Canned conclusions for the paper's headline claims.
namespace conclusions {
/// MiniFE (7.2 GB) gains >= `factor` from HBM at 64 threads.
[[nodiscard]] Conclusion minife_hbm_speedup_at_least(double factor);
/// GUPS (8 GiB) runs faster from DRAM than from HBM at 64 threads.
[[nodiscard]] Conclusion gups_prefers_dram();
/// XSBench (5.6 GB): HBM overtakes DRAM at 256 threads.
[[nodiscard]] Conclusion xsbench_crossover_at_256();
}  // namespace conclusions

}  // namespace knl::report
