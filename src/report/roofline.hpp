// Roofline analysis for the simulated node.
//
// The paper's taxonomy — bandwidth-bound vs latency/compute-bound — is a
// roofline statement: a kernel with arithmetic intensity below the ridge
// point is bandwidth-bound, and MCDRAM moves the ridge 4x to the left.
// This module computes the per-configuration rooflines and places any
// workload on them, turning "which memory helps this code" into a chart.
#pragma once

#include <string>
#include <vector>

#include "core/machine.hpp"
#include "report/figure.hpp"
#include "workloads/workload.hpp"

namespace knl::report {

class Roofline {
 public:
  /// Roofline of `machine` under `config` with `threads` threads: compute
  /// peak from the SMT-scaled FMA model, memory slope from a streaming
  /// probe run through the machine itself.
  Roofline(const Machine& machine, MemConfig config, int threads);

  [[nodiscard]] double peak_gflops() const noexcept { return peak_gflops_; }
  [[nodiscard]] double stream_bw_gbs() const noexcept { return stream_bw_gbs_; }

  /// Attainable GFLOPS at a given arithmetic intensity (flops/byte).
  [[nodiscard]] double attainable_gflops(double intensity) const;

  /// Intensity where the memory slope meets the compute roof.
  [[nodiscard]] double ridge_intensity() const;

  /// Sampled curve (log-spaced intensities), for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(double lo, double hi,
                                                             int points) const;

  struct Placement {
    double intensity = 0.0;        ///< workload flops per memory byte
    double attainable_gflops = 0.0;
    double kernel_roof_gflops = 0.0;  ///< machine roof x kernel efficiency
    bool compute_bound = false;    ///< right of the kernel's own ridge point
  };
  /// Place a workload on this roofline using its profile's flops and the
  /// machine's modelled memory traffic. The compute roof is scaled by the
  /// kernel's own efficiency (a blocked DGEMM cannot exceed its achievable
  /// fraction of peak, so that is the roof that decides its boundedness).
  [[nodiscard]] Placement classify(const workloads::Workload& workload) const;

  /// Figure with the rooflines of all three configurations plus markers
  /// for the given workloads (series named after them).
  [[nodiscard]] static Figure chart(const Machine& machine, int threads,
                                    const std::vector<const workloads::Workload*>& marks);

 private:
  const Machine& machine_;
  MemConfig config_;
  int threads_;
  double peak_gflops_ = 0.0;
  double stream_bw_gbs_ = 0.0;
};

}  // namespace knl::report
