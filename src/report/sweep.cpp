#include "report/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <type_traits>

#include "core/thread_pool.hpp"
#include "sim/mcdram_cache.hpp"
#include "sim/reuse_profile.hpp"

namespace knl::report {

namespace {

// ---------------------------------------------------------------------------
// Hashing (FNV-1a over raw value bytes, matching MachineConfig::fingerprint).
// ---------------------------------------------------------------------------
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mix(std::uint64_t& h, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  mix_bytes(h, &value, sizeof(value));
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Grid dispatch: evaluate `cells` independent cells, inline for jobs == 1,
// on a work-stealing pool otherwise. Results land in slot order, so the
// caller's merge is deterministic regardless of completion order.
//
// Resilience discipline: every cell evaluation runs behind a retry loop
// (Transient errors back off and re-try up to the budget), a failed cell is
// *captured* into its outcome instead of aborting the grid, a substrate
// (pool-dispatch) fault triggers a whole-grid serial fallback, and an armed
// watchdog deadline re-runs overdue parallel cells serially.
// ---------------------------------------------------------------------------
struct CellOutcome {
  bool feasible = false;
  bool cache_hit = false;
  double x = 0.0;
  double y = 0.0;
  double seconds = 0.0;
  bool ok = true;            ///< false => error captured below, no point
  int attempts = 1;          ///< tries made (retries = attempts - 1)
  ErrorCategory category = ErrorCategory::Internal;
  std::string message;
};

int resolve_jobs(int jobs) {
  return jobs <= 0 ? static_cast<int>(core::ThreadPool::hardware_threads()) : jobs;
}

/// One cell through the retry loop, errors captured instead of thrown. The
/// injection point sits *inside* the retried callable, keyed by the cell
/// index, so the outcome (and exact attempt count) is a pure function of
/// the armed plan — never of job count or scheduling.
template <typename Eval>
CellOutcome guarded_eval(const SweepOptions& options, std::size_t index,
                         const Eval& eval) {
  CellOutcome cell;
  // Between-cell deadline check: once the request's budget is spent, the
  // remaining cells fail fast (Resource, so the retry loop never re-runs
  // them) instead of computing results the client already abandoned.
  if (Deadline::expired(options.deadline)) {
    cell.ok = false;
    cell.category = ErrorCategory::Resource;
    cell.message = std::string(kDeadlineExceededCode) + ": cell " +
                   std::to_string(index) + " skipped, request budget exhausted";
    return cell;
  }
  fault::RetryStats tries;
  try {
    cell = fault::with_retry(
        options.retry, index,
        [&] {
          fault::maybe_inject(fault::kSiteSweepCell, index);
          return eval(index);
        },
        &tries);
  } catch (const Error& e) {
    cell = CellOutcome{};
    cell.ok = false;
    cell.category = e.category();
    cell.message = e.what();
  } catch (const std::exception& e) {
    cell = CellOutcome{};
    cell.ok = false;
    cell.category = ErrorCategory::Internal;
    cell.message = e.what();
  }
  cell.attempts = tries.attempts;
  return cell;
}

template <typename Eval>
std::vector<CellOutcome> run_grid(const SweepOptions& options, std::size_t cells,
                                  const Eval& eval, SweepStats& stats) {
  std::vector<CellOutcome> out(cells);
  const auto workers = static_cast<std::size_t>(resolve_jobs(options.jobs));
  if (workers <= 1 || cells <= 1) {
    for (std::size_t i = 0; i < cells; ++i) out[i] = guarded_eval(options, i, eval);
    return out;
  }

  bool substrate_fault = false;
  {
    core::ThreadPool pool(static_cast<unsigned>(std::min(workers, cells)));
    std::vector<std::future<void>> futures;
    futures.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      futures.push_back(
          pool.submit([&out, &options, &eval, i] { out[i] = guarded_eval(options, i, eval); }));
    }
    // Cell errors are captured inside guarded_eval; anything surfacing here
    // came from the substrate itself (e.g. an injected dispatch fault fires
    // in the task wrapper, before the cell body runs). Drain every future —
    // never abandon the rest of the grid on the first failure.
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        substrate_fault = true;
      }
    }
  }

  if (substrate_fault) {
    // Graceful parallel -> serial fallback: re-evaluate the whole grid
    // inline, exactly what jobs=1 would have computed.
    ++stats.serial_fallbacks;
    for (std::size_t i = 0; i < cells; ++i) out[i] = guarded_eval(options, i, eval);
    return out;
  }

  if (options.cell_deadline_ms > 0.0) {
    // Watchdog: a parallel cell that overran its deadline was likely starved
    // by siblings — re-run it serially, where it has the machine to itself.
    // Deterministic cells recompute to bit-identical results.
    for (std::size_t i = 0; i < cells; ++i) {
      if (out[i].ok && out[i].seconds * 1e3 > options.cell_deadline_ms) {
        ++stats.watchdog_trips;
        out[i] = guarded_eval(options, i, eval);
      }
    }
  }
  return out;
}

/// Merge one cell into the running stats (figure points are added by the
/// caller, which knows the series naming).
void account(SweepStats& stats, const CellOutcome& cell) {
  ++stats.cells;
  if (cell.attempts > 1) stats.retries += static_cast<std::size_t>(cell.attempts - 1);
  stats.cell_seconds += cell.seconds;
  if (!cell.ok) {
    ++stats.failed;
    return;
  }
  if (cell.cache_hit) {
    ++stats.cache_hits;
  } else {
    ++stats.evaluated;
  }
  if (!cell.feasible) ++stats.infeasible;
}

/// Human label of one failed cell, e.g. "1073741824 B / HBM @ 64 threads".
std::string size_cell_label(std::uint64_t bytes, MemConfig config, int threads) {
  return std::to_string(bytes) + " B / " + std::string(to_string(config)) + " @ " +
         std::to_string(threads) + " threads";
}

std::string thread_cell_label(int threads, MemConfig config) {
  return "threads=" + std::to_string(threads) + " / " + std::string(to_string(config));
}

}  // namespace

std::uint64_t profile_fingerprint(const trace::AccessProfile& profile) {
  std::uint64_t h = kFnvOffset;
  mix(h, profile.resident_bytes());
  mix(h, profile.phases().size());
  for (const trace::AccessPhase& phase : profile.phases()) {
    mix(h, phase.pattern);
    mix(h, phase.footprint_bytes);
    mix(h, phase.logical_bytes);
    mix(h, phase.flops);
    mix(h, phase.granule_bytes);
    mix(h, phase.sweeps);
    mix(h, phase.write_fraction);
    mix(h, phase.stride_bytes);
    mix(h, phase.chains_per_thread);
    mix(h, phase.mlp_override);
    mix(h, phase.l2_hit_override);
    mix(h, phase.smt_beta);
    mix(h, phase.compute_efficiency);
  }
  return h;
}

std::size_t SweepKeyHash::operator()(const SweepKey& key) const noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, key.profile_hash);
  mix(h, key.machine_hash);
  mix(h, key.config);
  mix(h, key.threads);
  return static_cast<std::size_t>(h);
}

std::size_t ProfileKeyHash::operator()(const ProfileKey& key) const noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, key.trace_hash);
  mix(h, key.machine_hash);
  mix(h, key.threads);
  mix(h, key.geometry_hash);
  return static_cast<std::size_t>(h);
}

// ---------------------------------------------------------------------------
// SweepCache
// ---------------------------------------------------------------------------
SweepCache& SweepCache::instance() {
  static SweepCache cache;
  return cache;
}

SweepCache::Shard& SweepCache::shard_for(const SweepKey& key) const {
  // Top hash bits pick the shard; unordered_map consumes the low bits for
  // its buckets, so the two choices stay uncorrelated.
  const std::size_t h = SweepKeyHash{}(key);
  return shards_[(h >> 48) & (kShardCount - 1)];
}

void SweepCache::store_locked(Shard& shard, const SweepKey& key,
                              const RunResult& result) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->result = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, result});
  shard.index.emplace(key, shard.lru.begin());
  const std::size_t bound = std::max<std::size_t>(1, shard_capacity());
  while (shard.index.size() > bound) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<RunResult> SweepCache::lookup(const SweepKey& key) const {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void SweepCache::store(const SweepKey& key, const RunResult& result) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  store_locked(shard, key, result);
}

RunResult SweepCache::fetch_or_compute(const SweepKey& key,
                                       const std::function<RunResult()>& compute,
                                       bool* cache_hit) {
  Shard& shard = shard_for(key);
  std::shared_future<RunResult> herd;
  std::promise<RunResult> mine;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second->result;
    }
    if (const auto in = shard.inflight.find(key); in != shard.inflight.end()) {
      herd = in->second;  // join the herd: share the owner's computation
      coalesced_.fetch_add(1, std::memory_order_relaxed);
    } else {
      owner = true;
      misses_.fetch_add(1, std::memory_order_relaxed);
      shard.inflight.emplace(key, std::shared_future<RunResult>(mine.get_future()));
    }
  }
  if (!owner) {
    // Served without evaluating — a cache hit from the caller's viewpoint.
    if (cache_hit != nullptr) *cache_hit = true;
    return herd.get();  // rethrows whatever the owner threw
  }
  if (cache_hit != nullptr) *cache_hit = false;
  try {
    const RunResult result = compute();
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      // Insert before retiring the in-flight entry so no window exists in
      // which a third query finds neither and recomputes.
      store_locked(shard, key, result);
      shard.inflight.erase(key);
    }
    mine.set_value(result);
    return result;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
}

SweepCache::ProfileShard& SweepCache::profile_shard_for(const ProfileKey& key) const {
  const std::size_t h = ProfileKeyHash{}(key);
  return profile_shards_[(h >> 48) & (kShardCount - 1)];
}

void SweepCache::store_profile_locked(ProfileShard& shard, const ProfileKey& key,
                                      const ProfilePtr& profile) {
  profile_inserts_.fetch_add(1, std::memory_order_relaxed);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->profile = profile;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(ProfileEntry{key, profile});
  shard.index.emplace(key, shard.lru.begin());
  const std::size_t bound = std::max<std::size_t>(1, profile_shard_capacity());
  while (shard.index.size() > bound) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    profile_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SweepCache::ProfilePtr SweepCache::lookup_profile(const ProfileKey& key) const {
  ProfileShard& shard = profile_shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    profile_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  profile_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->profile;
}

SweepCache::ProfilePtr SweepCache::fetch_or_compute_profile(
    const ProfileKey& key, const std::function<ProfilePtr()>& compute,
    bool* cache_hit) {
  ProfileShard& shard = profile_shard_for(key);
  std::shared_future<ProfilePtr> herd;
  std::promise<ProfilePtr> mine;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      profile_hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second->profile;
    }
    if (const auto in = shard.inflight.find(key); in != shard.inflight.end()) {
      herd = in->second;
      profile_coalesced_.fetch_add(1, std::memory_order_relaxed);
    } else {
      owner = true;
      profile_misses_.fetch_add(1, std::memory_order_relaxed);
      shard.inflight.emplace(key, std::shared_future<ProfilePtr>(mine.get_future()));
    }
  }
  if (!owner) {
    if (cache_hit != nullptr) *cache_hit = true;
    return herd.get();
  }
  if (cache_hit != nullptr) *cache_hit = false;
  try {
    const ProfilePtr profile = compute();
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      store_profile_locked(shard, key, profile);
      shard.inflight.erase(key);
    }
    mine.set_value(profile);
    return profile;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
}

std::size_t SweepCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.index.size();
  }
  return total;
}

std::size_t SweepCache::capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

void SweepCache::set_capacity(std::size_t max_entries) {
  const std::size_t per_shard =
      std::max<std::size_t>(1, (max_entries + kShardCount - 1) / kShardCount);
  capacity_.store(per_shard * kShardCount, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    while (shard.index.size() > per_shard) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SweepCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
  for (ProfileShard& shard : profile_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
}

SweepCacheStats SweepCache::stats() const {
  SweepCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.entries = size();
  s.capacity = capacity();
  s.shards = kShardCount;
  s.profile_hits = profile_hits_.load(std::memory_order_relaxed);
  s.profile_misses = profile_misses_.load(std::memory_order_relaxed);
  s.profile_inserts = profile_inserts_.load(std::memory_order_relaxed);
  s.profile_evictions = profile_evictions_.load(std::memory_order_relaxed);
  s.profile_coalesced = profile_coalesced_.load(std::memory_order_relaxed);
  for (const ProfileShard& shard : profile_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    s.profile_entries += shard.index.size();
  }
  s.profile_capacity = profile_capacity_.load(std::memory_order_relaxed);
  return s;
}

void SweepCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  coalesced_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  profile_hits_.store(0, std::memory_order_relaxed);
  profile_misses_.store(0, std::memory_order_relaxed);
  profile_evictions_.store(0, std::memory_order_relaxed);
  profile_coalesced_.store(0, std::memory_order_relaxed);
  profile_inserts_.store(0, std::memory_order_relaxed);
}

namespace {
// v2: entry lines unchanged from v1, but the header also pins the
// machine-profile schema version — a cache persisted under another schema
// must read as cold, never as subtly stale.
constexpr const char* kCacheHeaderPrefix = "knlmem-sweep-cache 2 machine-schema ";
std::string cache_header() {
  return std::string(kCacheHeaderPrefix) + std::to_string(kMachineSchemaVersion);
}
}

std::string SweepCache::serialize() const {
  std::string out = cache_header() + "\n";
  char line[1024];
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      const SweepKey& key = entry.key;
      const RunResult& r = entry.result;
      // Hex floats (%a) round-trip doubles exactly, keeping warm-cache runs
      // bit-identical to cold ones. The free-form infeasibility reason goes
      // last so it may contain spaces; "-" marks an empty reason.
      const int n = std::snprintf(
          line, sizeof(line),
          "%016" PRIx64 " %016" PRIx64 " %d %d %d %a %a %a %a %a %a %s\n",
          key.profile_hash, key.machine_hash, static_cast<int>(key.config),
          key.threads, r.feasible ? 1 : 0, r.seconds, r.bytes_from_memory,
          r.flops, r.avg_latency_ns, r.achieved_bw_gbs, r.mcdram_hit_rate,
          r.infeasible_reason.empty() ? "-" : r.infeasible_reason.c_str());
      if (n > 0 && static_cast<std::size_t>(n) < sizeof(line)) out += line;
    }
  }
  return out;
}

bool SweepCache::save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = serialize();
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool ok = std::fclose(file) == 0 && wrote;
  return ok;
}

bool SweepCache::deserialize(const std::string& text) {
  const std::string header = cache_header();
  if (text.size() < header.size() ||
      text.compare(0, header.size(), header) != 0 ||
      (text.size() > header.size() && text[header.size()] != '\n' &&
       text[header.size()] != '\r')) {
    return false;
  }
  std::size_t pos = text.find('\n');
  char line[1024];
  while (pos != std::string::npos && pos + 1 < text.size()) {
    const std::size_t start = pos + 1;
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::size_t len = std::min(end - start, sizeof(line) - 1);
    std::memcpy(line, text.data() + start, len);
    line[len] = '\0';
    pos = end == text.size() ? std::string::npos : end;

    SweepKey key;
    RunResult r;
    int config = 0;
    int feasible = 0;
    int consumed = 0;
    const int fields = std::sscanf(
        line, "%" SCNx64 " %" SCNx64 " %d %d %d %la %la %la %la %la %la%n",
        &key.profile_hash, &key.machine_hash, &config, &key.threads, &feasible,
        &r.seconds, &r.bytes_from_memory, &r.flops, &r.avg_latency_ns,
        &r.achieved_bw_gbs, &r.mcdram_hit_rate, &consumed);
    if (fields != 11) continue;  // skip malformed lines, keep the rest
    key.config = static_cast<MemConfig>(config);
    r.feasible = feasible != 0;
    std::string reason(line + consumed);
    while (!reason.empty() && (reason.front() == ' ')) reason.erase(0, 1);
    while (!reason.empty() && (reason.back() == '\n' || reason.back() == '\r')) {
      reason.pop_back();
    }
    if (reason != "-") r.infeasible_reason = reason;
    store(key, r);
  }
  return true;
}

bool SweepCache::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return false;
  std::string text;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  return deserialize(text);
}

// ---------------------------------------------------------------------------
// Cell evaluation
// ---------------------------------------------------------------------------
RunResult cached_run(const Machine& machine, const trace::AccessProfile& profile,
                     const RunConfig& run_config, bool* cache_hit) {
  const SweepKey key{profile_fingerprint(profile), machine.config().fingerprint(),
                     run_config.config, run_config.threads};
  return SweepCache::instance().fetch_or_compute(
      key, [&] { return machine.run(profile, run_config); }, cache_hit);
}

std::optional<RunResult> cached_lookup(const Machine& machine,
                                       const trace::AccessProfile& profile,
                                       const RunConfig& run_config) {
  const SweepKey key{profile_fingerprint(profile), machine.config().fingerprint(),
                     run_config.config, run_config.threads};
  return SweepCache::instance().lookup(key);
}

// ---------------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------------
SweepRun sweep_sizes_run(const Machine& machine, const WorkloadFactory& factory,
                         const std::vector<std::uint64_t>& sizes_bytes, int threads,
                         const std::vector<MemConfig>& configs, Figure figure,
                         const SweepOptions& options) {
  const auto start = Clock::now();
  const std::size_t cells = sizes_bytes.size() * configs.size();

  const auto eval = [&](std::size_t index) {
    const auto cell_start = Clock::now();
    const std::uint64_t bytes = sizes_bytes[index / configs.size()];
    const MemConfig config = configs[index % configs.size()];

    CellOutcome cell;
    const auto workload = factory(bytes);
    cell.x = static_cast<double>(workload->footprint_bytes()) / 1e9;
    const RunConfig run_config{config, threads};
    RunResult result;
    if (options.cache_only) {
      const auto hit = cached_lookup(machine, workload->profile(), run_config);
      if (!hit.has_value()) {
        throw Error::resource("sweep/cache-only-miss",
                              "cell not resident in the SweepCache and the "
                              "service is degraded (cache-only mode)");
      }
      cell.cache_hit = true;
      result = *hit;
    } else if (options.memoize) {
      result = cached_run(machine, workload->profile(), run_config, &cell.cache_hit);
    } else {
      result = machine.run(workload->profile(), run_config);
    }
    cell.feasible = result.feasible;
    if (result.feasible) cell.y = workload->metric(result);
    cell.seconds = seconds_since(cell_start);
    return cell;
  };

  SweepRun run{std::move(figure), {}, {}};
  const std::vector<CellOutcome> outcomes = run_grid(options, cells, eval, run.stats);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& cell = outcomes[i];
    account(run.stats, cell);
    if (!cell.ok) {
      run.failures.push_back({i,
                              size_cell_label(sizes_bytes[i / configs.size()],
                                              configs[i % configs.size()], threads),
                              cell.category, cell.message});
      continue;
    }
    if (!cell.feasible) continue;  // paper: no bar when HBM can't hold it
    run.figure.add(to_string(configs[i % configs.size()]), cell.x, cell.y);
  }
  run.stats.wall_seconds = seconds_since(start);
  return run;
}

SweepRun sweep_threads_run(const Machine& machine, const workloads::Workload& workload,
                           const std::vector<int>& thread_counts,
                           const std::vector<MemConfig>& configs, Figure figure,
                           const SweepOptions& options) {
  const auto start = Clock::now();
  const trace::AccessProfile profile = workload.profile();
  const std::size_t cells = thread_counts.size() * configs.size();

  const auto eval = [&](std::size_t index) {
    const auto cell_start = Clock::now();
    const int threads = thread_counts[index / configs.size()];
    const MemConfig config = configs[index % configs.size()];

    CellOutcome cell;
    cell.x = static_cast<double>(threads);
    const RunConfig run_config{config, threads};
    RunResult result;
    if (options.cache_only) {
      const auto hit = cached_lookup(machine, profile, run_config);
      if (!hit.has_value()) {
        throw Error::resource("sweep/cache-only-miss",
                              "cell not resident in the SweepCache and the "
                              "service is degraded (cache-only mode)");
      }
      cell.cache_hit = true;
      result = *hit;
    } else if (options.memoize) {
      result = cached_run(machine, profile, run_config, &cell.cache_hit);
    } else {
      result = machine.run(profile, run_config);
    }
    cell.feasible = result.feasible;
    if (result.feasible) cell.y = workload.metric(result);
    cell.seconds = seconds_since(cell_start);
    return cell;
  };

  SweepRun run{std::move(figure), {}, {}};
  const std::vector<CellOutcome> outcomes = run_grid(options, cells, eval, run.stats);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& cell = outcomes[i];
    account(run.stats, cell);
    if (!cell.ok) {
      run.failures.push_back({i,
                              thread_cell_label(thread_counts[i / configs.size()],
                                                configs[i % configs.size()]),
                              cell.category, cell.message});
      continue;
    }
    if (!cell.feasible) continue;
    run.figure.add(to_string(configs[i % configs.size()]), cell.x, cell.y);
  }
  run.stats.wall_seconds = seconds_since(start);
  return run;
}

Figure sweep_sizes(const Machine& machine, const WorkloadFactory& factory,
                   const std::vector<std::uint64_t>& sizes_bytes, int threads,
                   const std::vector<MemConfig>& configs, Figure figure) {
  return sweep_sizes_run(machine, factory, sizes_bytes, threads, configs,
                         std::move(figure))
      .figure;
}

Figure sweep_threads(const Machine& machine, const workloads::Workload& workload,
                     const std::vector<int>& thread_counts,
                     const std::vector<MemConfig>& configs, Figure figure) {
  return sweep_threads_run(machine, workload, thread_counts, configs,
                           std::move(figure))
      .figure;
}

SweepStats& SweepStats::operator+=(const SweepStats& other) {
  cells += other.cells;
  evaluated += other.evaluated;
  cache_hits += other.cache_hits;
  infeasible += other.infeasible;
  cell_seconds += other.cell_seconds;
  wall_seconds += other.wall_seconds;
  retries += other.retries;
  failed += other.failed;
  watchdog_trips += other.watchdog_trips;
  serial_fallbacks += other.serial_fallbacks;
  profile_passes += other.profile_passes;
  profile_hits += other.profile_hits;
  cells_derived += other.cells_derived;
  return *this;
}

std::string SweepStats::summary() const {
  char buffer[448];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "sweep: %zu cells (%zu evaluated, %zu cache hits, %zu infeasible), "
      "cell time %.4f s, wall %.4f s",
      cells, evaluated, cache_hits, infeasible, cell_seconds, wall_seconds);
  // Single-pass accounting only when a capacity sweep ran.
  if (n > 0 && static_cast<std::size_t>(n) < sizeof(buffer) &&
      (profile_passes != 0 || profile_hits != 0 || cells_derived != 0)) {
    const int m = std::snprintf(
        buffer + n, sizeof(buffer) - static_cast<std::size_t>(n),
        ", single-pass: %zu passes, %zu profile hits, %zu cells derived",
        profile_passes, profile_hits, cells_derived);
    if (m > 0) n += m;
  }
  // Fault accounting only when something fired, keeping clean-run logs clean.
  if (n > 0 && static_cast<std::size_t>(n) < sizeof(buffer) &&
      (retries != 0 || failed != 0 || watchdog_trips != 0 ||
       serial_fallbacks != 0)) {
    std::snprintf(buffer + n, sizeof(buffer) - static_cast<std::size_t>(n),
                  ", faults: %zu retries, %zu failed, %zu watchdog trips, "
                  "%zu serial fallbacks",
                  retries, failed, watchdog_trips, serial_fallbacks);
  }
  return buffer;
}

// ---------------------------------------------------------------------------
// Derived series
// ---------------------------------------------------------------------------
void add_self_speedup_series(Figure& figure) {
  const auto snapshot = figure.series();  // copy: we append while iterating
  for (const auto& s : snapshot) {
    if (s.points.empty()) continue;
    const double base = s.points.front().second;
    if (base <= 0.0) continue;
    for (const auto& [x, y] : s.points) {
      figure.add(s.name + " speedup", x, y / base);
    }
  }
}

void add_ratio_series(Figure& figure, const std::string& numerator,
                      const std::string& denominator, const std::string& name) {
  const Series* num = figure.find(numerator);
  const Series* den = figure.find(denominator);
  if (num == nullptr || den == nullptr) return;
  const auto num_points = num->points;  // copies: figure.add may reallocate
  for (const auto& [x, y] : num_points) {
    const auto d = figure.value_at(denominator, x);
    if (d.has_value() && *d > 0.0) {
      figure.add(name, x, y / *d);
    }
  }
}

// ---------------------------------------------------------------------------
// Single-pass capacity sweeps
// ---------------------------------------------------------------------------
namespace {

std::uint64_t geometry_fingerprint(const CapacityGrid& grid) {
  std::uint64_t h = kFnvOffset;
  mix(h, grid.line_bytes);
  mix(h, grid.num_sets);
  mix(h, grid.sample_every);
  return h;
}

/// Trace fingerprint: the address stream is a pure function of (profile
/// content, synthesis options), so hashing those identifies it without
/// materializing it.
std::uint64_t trace_fingerprint(const trace::AccessProfile& profile,
                                const trace::SynthOptions& synth) {
  std::uint64_t h = profile_fingerprint(profile);
  mix(h, synth.max_addresses);
  mix(h, synth.seed);
  return h;
}

std::string capacity_cell_label(std::uint64_t bytes, int threads) {
  return "capacity=" + std::to_string(bytes) + " B @ " + std::to_string(threads) +
         " threads";
}

}  // namespace

std::vector<std::uint64_t> default_capacity_axis(const sim::MemoryTopology& topology,
                                                 std::uint64_t set_bytes,
                                                 std::size_t points) {
  if (set_bytes == 0 || points == 0) return {};
  int front = topology.cache_front_of(topology.dram_tier());
  if (front == -1) front = topology.fast_tier();
  const std::uint64_t ceiling = topology.tier(static_cast<std::size_t>(front))
                                    .params.capacity_bytes;
  std::vector<std::uint64_t> axis;
  for (std::size_t i = 1; i <= points; ++i) {
    const std::uint64_t raw = ceiling / points * i;
    const std::uint64_t aligned = raw / set_bytes * set_bytes;
    if (aligned == 0) continue;
    if (axis.empty() || axis.back() != aligned) axis.push_back(aligned);
  }
  return axis;
}

CapacityGrid default_capacity_grid(const sim::MemoryTopology& topology,
                                   std::size_t points) {
  CapacityGrid grid;
  grid.capacities_bytes =
      default_capacity_axis(topology, grid.line_bytes * grid.num_sets, points);
  return grid;
}

struct SweepPlanner::Request {
  const Machine* machine = nullptr;
  trace::AccessProfile profile;
  int threads = 0;
  CapacityGrid grid;
  Figure figure;
  ProfileKey key;
};

SweepPlanner::SweepPlanner(SweepOptions options) : options_(options) {}

SweepPlanner::~SweepPlanner() = default;

std::size_t SweepPlanner::add(const Machine& machine,
                              const trace::AccessProfile& profile, int threads,
                              CapacityGrid grid, Figure figure) {
  const ProfileKey key{trace_fingerprint(profile, grid.synth),
                       machine.config().fingerprint(), threads,
                       geometry_fingerprint(grid)};
  requests_.push_back(Request{&machine, profile, threads, std::move(grid),
                              std::move(figure), key});
  return requests_.size() - 1;
}

std::vector<CapacitySweepRun> SweepPlanner::run() {
  /// Requests sharing a ProfileKey coalesce onto one group = one profiling
  /// pass; the group's histogram answers every member grid's cells.
  struct Group {
    std::vector<std::size_t> members;  ///< request indices, add() order
    SweepCache::ProfilePtr profile;    ///< null => per-cell reference path
    /// Concrete trace, synthesized lazily — only the reference path needs it
    /// (the single-pass path with a profile-cache hit never replays at all).
    std::shared_ptr<const std::vector<std::uint64_t>> trace;
    bool pass_cache_hit = false;
    std::size_t pass_retries = 0;
    bool pass_ran = false;  ///< a pass succeeded (computed now or cached)
  };
  std::vector<Group> groups;
  std::unordered_map<ProfileKey, std::size_t, ProfileKeyHash> group_of;
  std::vector<std::size_t> request_group(requests_.size(), 0);
  for (std::size_t r = 0; r < requests_.size(); ++r) {
    const auto [it, fresh] = group_of.emplace(requests_[r].key, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].members.push_back(r);
    request_group[r] = it->second;
  }

  // Phase 1: one profiling pass per fingerprint group, behind the same
  // retry/injection discipline as grid cells but in the dedicated key space
  // (kProfilePassKeyBase + group ordinal, disjoint from cell indices). A
  // pass that still fails after the retry budget does not fail the sweep:
  // its group falls back to the per-cell reference path, which computes the
  // identical cells — just without the single-pass speedup.
  if (options_.single_pass) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      Group& group = groups[g];
      const Request& first = requests_[group.members.front()];
      // Brownout: a degraded service answers only from resident profiles —
      // no trace synthesis, no profiling pass. Cells of groups with no
      // resident profile fail with "sweep/cache-only-miss" in phase 2.
      if (options_.cache_only) {
        group.profile = SweepCache::instance().lookup_profile(first.key);
        group.pass_cache_hit = group.profile != nullptr;
        group.pass_ran = group.profile != nullptr;
        continue;
      }
      // Out of budget: skip the remaining passes; phase 2 fails each cell
      // fast with the deadline error instead of replaying traces.
      if (Deadline::expired(options_.deadline)) break;
      const std::uint64_t pass_key = kProfilePassKeyBase + g;
      fault::RetryStats tries;
      try {
        group.profile = fault::with_retry(
            options_.retry, pass_key,
            [&]() -> SweepCache::ProfilePtr {
              fault::maybe_inject(fault::kSiteSweepCell, pass_key);
              const auto compute = [&]() -> SweepCache::ProfilePtr {
                const std::vector<std::uint64_t> addrs =
                    trace::synthesize_trace(first.profile, first.grid.synth);
                sim::ReuseProfileConfig config;
                config.line_bytes = first.grid.line_bytes;
                config.num_sets = first.grid.num_sets;
                config.sample_every = first.grid.sample_every;
                return std::make_shared<const sim::ReuseProfile>(
                    sim::profile_trace(addrs.data(), addrs.size(), config,
                                       resolve_jobs(options_.jobs)));
              };
              bool hit = false;
              SweepCache::ProfilePtr profile =
                  options_.memoize ? SweepCache::instance().fetch_or_compute_profile(
                                         first.key, compute, &hit)
                                   : compute();
              group.pass_cache_hit = hit;
              return profile;
            },
            &tries);
        group.pass_ran = group.profile != nullptr;
      } catch (...) {
        group.profile = nullptr;
      }
      if (tries.attempts > 1) {
        group.pass_retries = static_cast<std::size_t>(tries.attempts - 1);
      }
    }
  }

  // Phase 2: derive (or reference-replay) every grid, in add() order.
  std::vector<CapacitySweepRun> results;
  results.reserve(requests_.size());
  for (std::size_t r = 0; r < requests_.size(); ++r) {
    const auto start = Clock::now();
    Request& request = requests_[r];
    Group& group = groups[request_group[r]];
    const CapacityGrid& grid = request.grid;

    CapacitySweepRun out{std::move(request.figure), {}, {}, {}};
    const std::size_t cells = grid.capacities_bytes.size();
    out.cells.assign(cells, CapacityCell{});
    for (std::size_t i = 0; i < cells; ++i) {
      out.cells[i].capacity_bytes = grid.capacities_bytes[i];
    }

    // Pass accounting: the group's first request owns the pass (computed or
    // cache hit); every later member is a pure profile hit.
    if (group.pass_ran) {
      if (r == group.members.front()) {
        if (group.pass_cache_hit) {
          ++out.stats.profile_hits;
        } else {
          ++out.stats.profile_passes;
        }
        out.stats.retries += group.pass_retries;
      } else {
        ++out.stats.profile_hits;
      }
    } else if (options_.single_pass && r == group.members.front()) {
      out.stats.retries += group.pass_retries;
    }

    // The reference path replays the concrete trace per cell; synthesize it
    // once per group. Degraded (cache-only) and out-of-budget sweeps never
    // synthesize: their cells fail fast inside eval instead.
    if (group.profile == nullptr && group.trace == nullptr &&
        !options_.cache_only && !Deadline::expired(options_.deadline)) {
      group.trace = std::make_shared<const std::vector<std::uint64_t>>(
          trace::synthesize_trace(request.profile, grid.synth));
    }

    const std::uint64_t set_bytes = grid.line_bytes * grid.num_sets;
    const sim::TimingConfig& timing = request.machine->timing().config();
    double logical_bytes = 0.0;
    for (const trace::AccessPhase& phase : request.profile.phases()) {
      logical_bytes += phase.logical_bytes;
    }

    std::vector<CapacityCell>& cells_out = out.cells;
    const auto eval = [&](std::size_t index) {
      const auto cell_start = Clock::now();
      const std::uint64_t capacity = grid.capacities_bytes[index];
      if (set_bytes == 0 || capacity % set_bytes != 0 || capacity / set_bytes == 0) {
        throw Error::corrupt_input(
            "sweep/capacity-grid",
            "capacity " + std::to_string(capacity) +
                " is not a positive multiple of line_bytes*num_sets (" +
                std::to_string(set_bytes) + ")");
      }
      const std::uint64_t ways = capacity / set_bytes;

      CapacityCell cell;
      cell.capacity_bytes = capacity;
      cell.ways = ways;
      if (group.profile != nullptr) {
        // Mattson derivation: hits at W ways = accesses with stack distance
        // < W, read off the shared histogram's prefix sum.
        const std::uint64_t sampled = group.profile->sampled();
        cell.hit_rate = sampled == 0
                            ? 0.0
                            : static_cast<double>(group.profile->hits_for_ways(ways)) /
                                  static_cast<double>(sampled);
        cell.profile_hit = true;
      } else if (group.trace != nullptr) {
        sim::ReuseProfileConfig geometry;
        geometry.line_bytes = grid.line_bytes;
        geometry.num_sets = grid.num_sets;
        geometry.sample_every = grid.sample_every;
        const sim::CapacityReference ref = sim::replay_capacity_reference(
            group.trace->data(), group.trace->size(), geometry, ways);
        cell.hit_rate = ref.sampled == 0 ? 0.0
                                         : static_cast<double>(ref.hits) /
                                               static_cast<double>(ref.sampled);
      } else {
        // No profile and no trace: cache-only with nothing resident (or the
        // budget expired before synthesis could run).
        throw Error::resource(
            options_.cache_only ? "sweep/cache-only-miss" : kDeadlineExceededCode,
            "reuse profile not resident and the per-cell reference is "
            "unavailable in this mode");
      }

      // Timing: the machine's MCDRAM blend model at this cell's capacity.
      sim::McdramCacheConfig mcdram = timing.mcdram;
      mcdram.capacity_bytes = capacity;
      const sim::McdramCacheModel model(mcdram);
      cell.effective_bw_gbs = model.effective_bandwidth_gbs(
          cell.hit_rate, timing.hbm.stream_bw_gbs, timing.ddr.stream_bw_gbs);
      cell.avg_latency_ns = model.effective_latency_ns(
          cell.hit_rate, timing.hbm.idle_latency_ns, timing.ddr.idle_latency_ns);
      cell.seconds = cell.effective_bw_gbs > 0.0
                         ? logical_bytes / (cell.effective_bw_gbs * 1e9)
                         : 0.0;
      cells_out[index] = cell;

      CellOutcome outcome;
      outcome.feasible = true;
      outcome.x = static_cast<double>(capacity) / 1e9;
      outcome.y = cell.hit_rate;
      outcome.seconds = seconds_since(cell_start);
      return outcome;
    };

    const std::vector<CellOutcome> outcomes =
        run_grid(options_, cells, eval, out.stats);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const CellOutcome& outcome = outcomes[i];
      account(out.stats, outcome);
      if (!outcome.ok) {
        out.failures.push_back({i,
                                capacity_cell_label(grid.capacities_bytes[i],
                                                    request.threads),
                                outcome.category, outcome.message});
        continue;
      }
      if (out.cells[i].profile_hit) ++out.stats.cells_derived;
      out.figure.add("MCDRAM$ hit rate", outcome.x, out.cells[i].hit_rate);
      out.figure.add("effective GB/s", outcome.x, out.cells[i].effective_bw_gbs);
    }
    out.stats.wall_seconds = seconds_since(start);
    results.push_back(std::move(out));
  }
  requests_.clear();
  return results;
}

CapacitySweepRun sweep_capacities_run(const Machine& machine,
                                      const trace::AccessProfile& profile,
                                      int threads, CapacityGrid grid, Figure figure,
                                      const SweepOptions& options) {
  SweepPlanner planner(options);
  planner.add(machine, profile, threads, std::move(grid), std::move(figure));
  std::vector<CapacitySweepRun> runs = planner.run();
  return std::move(runs.front());
}

}  // namespace knl::report
