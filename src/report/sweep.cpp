#include "report/sweep.hpp"

#include <set>

namespace knl::report {

Figure sweep_sizes(const Machine& machine, const WorkloadFactory& factory,
                   const std::vector<std::uint64_t>& sizes_bytes, int threads,
                   const std::vector<MemConfig>& configs, Figure figure) {
  for (const std::uint64_t bytes : sizes_bytes) {
    const auto workload = factory(bytes);
    const double x = static_cast<double>(workload->footprint_bytes()) / 1e9;
    for (const MemConfig config : configs) {
      const RunResult result = machine.run(workload->profile(), RunConfig{config, threads});
      if (!result.feasible) continue;  // paper: no bar when HBM can't hold it
      figure.add(to_string(config), x, workload->metric(result));
    }
  }
  return figure;
}

Figure sweep_threads(const Machine& machine, const workloads::Workload& workload,
                     const std::vector<int>& thread_counts,
                     const std::vector<MemConfig>& configs, Figure figure) {
  const trace::AccessProfile profile = workload.profile();
  for (const int threads : thread_counts) {
    for (const MemConfig config : configs) {
      const RunResult result = machine.run(profile, RunConfig{config, threads});
      if (!result.feasible) continue;
      figure.add(to_string(config), static_cast<double>(threads),
                 workload.metric(result));
    }
  }
  return figure;
}

void add_self_speedup_series(Figure& figure) {
  const auto snapshot = figure.series();  // copy: we append while iterating
  for (const auto& s : snapshot) {
    if (s.points.empty()) continue;
    const double base = s.points.front().second;
    if (base <= 0.0) continue;
    for (const auto& [x, y] : s.points) {
      figure.add(s.name + " speedup", x, y / base);
    }
  }
}

void add_ratio_series(Figure& figure, const std::string& numerator,
                      const std::string& denominator, const std::string& name) {
  const Series* num = figure.find(numerator);
  const Series* den = figure.find(denominator);
  if (num == nullptr || den == nullptr) return;
  const auto num_points = num->points;  // copies: figure.add may reallocate
  for (const auto& [x, y] : num_points) {
    const auto d = figure.value_at(denominator, x);
    if (d.has_value() && *d > 0.0) {
      figure.add(name, x, y / *d);
    }
  }
}

}  // namespace knl::report
