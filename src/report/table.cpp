#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace knl::report {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append("  ");
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_gb(double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << bytes / 1e9 << " GB";
  return os.str();
}

}  // namespace knl::report
