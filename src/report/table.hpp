// Generic aligned text table (used for Table I/II style output and the
// EXPERIMENTS summaries).
#pragma once

#include <string>
#include <vector>

namespace knl::report {

/// Fixed-column table of strings: headers set once, rows appended, rendered
/// in three formats. Column widths auto-size to the longest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Space-aligned plain text (what the bench binaries print).
  [[nodiscard]] std::string to_string() const;
  /// GitHub-flavoured markdown table (pasteable into EXPERIMENTS.md).
  [[nodiscard]] std::string to_markdown() const;
  /// Comma-separated values, one line per row, headers first.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count the way the paper labels axes ("11.4 GB").
[[nodiscard]] std::string format_gb(double bytes);

}  // namespace knl::report
