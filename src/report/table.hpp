// Generic aligned text table (used for Table I/II style output and the
// EXPERIMENTS summaries).
#pragma once

#include <string>
#include <vector>

namespace knl::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count the way the paper labels axes ("11.4 GB").
[[nodiscard]] std::string format_gb(double bytes);

}  // namespace knl::report
