// knl-repro: the paper-reproduction pipeline CLI (run / diff / bless / list).
// All logic lives in repro/cli.cpp so the exit-code contract is unit-tested;
// this translation unit only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "repro/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return knl::repro::cli_main(args, std::cout, std::cerr);
}
