// knl-repro: the paper-reproduction pipeline CLI (run / diff / bless / list).
// All logic lives in repro/cli.cpp so the exit-code contract is unit-tested;
// this translation unit only adapts argv and installs the signal handlers
// backing the "interrupted, resumable" (exit 3) contract: SIGINT/SIGTERM
// raise a cooperative flag, `run` finishes the experiment in flight,
// journals it, and exits between experiments.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "repro/cli.hpp"

namespace {

extern "C" void handle_interrupt(int) { knl::repro::request_interrupt(); }

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  const std::vector<std::string> args(argv + 1, argv + argc);
  return knl::repro::cli_main(args, std::cout, std::cerr);
}
