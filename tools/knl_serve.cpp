// knl-serve: the placement-advisor daemon. Binds PlacementService to a
// loopback HTTP listener and runs until SIGINT/SIGTERM, then drains
// gracefully: the listener closes, in-flight requests finish within the
// drain deadline, a final SweepCache snapshot lands on disk, and the
// process exits 0. On boot the daemon recovers the previous life's warmth:
// it verifies and loads the cache snapshot (a tampered snapshot is
// rejected and the cache cold-starts) and replays any journaled requests
// that were in flight when the previous process died. Every knob of
// ServiceOptions and HttpServerOptions is a flag; docs/SERVICE.md documents
// the endpoints and a worked curl session.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault/fault_injection.hpp"
#include "service/http.hpp"
#include "service/recovery.hpp"
#include "service/service.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_signal(int) { g_stop.store(true); }

void usage(std::ostream& os) {
  os << "usage: knl-serve [options]\n"
        "\n"
        "Serve placement, what-if and sweep queries over HTTP on 127.0.0.1.\n"
        "\n"
        "options:\n"
        "  --port N            TCP port (default 0 = ephemeral; the chosen\n"
        "                      port is printed on stdout as 'listening on ...')\n"
        "  --workers N         query-execution threads (default 0 = one per\n"
        "                      hardware thread)\n"
        "  --http-threads N    connection-acceptor threads (default 8)\n"
        "  --max-inflight N    admitted queries before load shedding kicks in\n"
        "                      with HTTP 429 (default 1024)\n"
        "  --retry-after-ms N  base Retry-After hint on 429/503 responses; the\n"
        "                      served value scales with queue depth (default 50)\n"
        "  --cache-capacity N  SweepCache entry bound (default 65536)\n"
        "  --max-sweep-cells N largest per-query sweep grid (default 512)\n"
        "  --idle-timeout-ms N keep-alive idle timeout (default 5000)\n"
        "  --read-deadline-ms N  slow-client budget for reading one request;\n"
        "                      past it the client gets 408 (default 10000)\n"
        "  --default-deadline-ms N  server-side request budget when the client\n"
        "                      sends none; 0 disables (default 30000)\n"
        "  --degraded-p99-ms N  rolling p99 above which /sweep browns out to\n"
        "                      cache-only answers (default 250)\n"
        "  --shedding-p99-ms N  rolling p99 above which POST queries shed with\n"
        "                      429 (default 1000)\n"
        "  --snapshot-path P   SweepCache snapshot file: loaded (and verified)\n"
        "                      on boot, written every --snapshot-interval-ms\n"
        "                      and once more on graceful drain\n"
        "  --snapshot-interval-ms N  periodic snapshot cadence (default 5000)\n"
        "  --journal-path P    in-flight request journal: pending requests are\n"
        "                      replayed on boot, then the journal restarts\n"
        "  --drain-deadline-ms N  bound on graceful drain; past it the process\n"
        "                      exits without waiting further (default 10000)\n"
        "  --help              this text\n"
        "\n"
        "Fault injection: set KNL_FAULT_PLAN to arm the deterministic\n"
        "injector (sites http-read, http-write, json-write, ...).\n";
}

bool parse_int(const std::string& text, long long& out) {
  try {
    std::size_t consumed = 0;
    out = std::stoll(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  knl::service::ServiceOptions service_options;
  knl::service::HttpServerOptions http_options;
  std::string snapshot_path;
  std::string journal_path;
  long long snapshot_interval_ms = 5000;
  long long drain_deadline_ms = 10000;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (i + 1 >= args.size()) {
      std::cerr << "knl-serve: " << arg << " needs a value\n";
      return 2;
    }
    // The two path-valued flags take their value verbatim.
    if (arg == "--snapshot-path") {
      snapshot_path = args[++i];
      continue;
    }
    if (arg == "--journal-path") {
      journal_path = args[++i];
      continue;
    }
    long long value = 0;
    if (!parse_int(args[++i], value) || value < 0) {
      std::cerr << "knl-serve: bad value for " << arg << ": " << args[i] << "\n";
      return 2;
    }
    if (arg == "--port" && value <= 65535) {
      http_options.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--workers") {
      service_options.workers = static_cast<int>(value);
    } else if (arg == "--http-threads" && value > 0) {
      http_options.threads = static_cast<int>(value);
    } else if (arg == "--max-inflight" && value > 0) {
      service_options.max_inflight = static_cast<std::size_t>(value);
    } else if (arg == "--retry-after-ms") {
      service_options.retry_after_ms = static_cast<int>(value);
    } else if (arg == "--cache-capacity" && value > 0) {
      service_options.cache_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--max-sweep-cells" && value > 0) {
      service_options.max_sweep_cells = static_cast<std::size_t>(value);
    } else if (arg == "--idle-timeout-ms" && value > 0) {
      http_options.idle_timeout_ms = static_cast<int>(value);
    } else if (arg == "--read-deadline-ms") {
      http_options.read_deadline_ms = static_cast<int>(value);
    } else if (arg == "--default-deadline-ms") {
      service_options.default_deadline_ms = static_cast<double>(value);
    } else if (arg == "--degraded-p99-ms" && value > 0) {
      service_options.health.degraded_p99_ms = static_cast<double>(value);
    } else if (arg == "--shedding-p99-ms" && value > 0) {
      service_options.health.shedding_p99_ms = static_cast<double>(value);
    } else if (arg == "--snapshot-interval-ms" && value > 0) {
      snapshot_interval_ms = value;
    } else if (arg == "--drain-deadline-ms" && value > 0) {
      drain_deadline_ms = value;
    } else {
      std::cerr << "knl-serve: unknown or out-of-range option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::string fault_error;
  if (!knl::fault::arm_from_env(&fault_error)) {
    std::cerr << "knl-serve: bad KNL_FAULT_PLAN: " << fault_error << "\n";
    return 2;
  }

  try {
    knl::service::PlacementService service(service_options);
    service.health().set_transition_log(
        [](knl::service::HealthState from, knl::service::HealthState to,
           const std::string& why) {
          std::cerr << "knl-serve: health " << knl::service::to_string(from)
                    << " -> " << knl::service::to_string(to) << " (" << why
                    << ")\n";
        });

    // Warm-restart recovery, in order: verify + load the snapshot, replay
    // whatever the previous life admitted but never answered, then start
    // journaling this life's requests from a clean file.
    if (!snapshot_path.empty()) {
      std::string detail;
      const knl::service::SnapshotLoad outcome =
          knl::service::load_cache_snapshot(snapshot_path, &detail);
      std::cout << "knl-serve: snapshot " << knl::service::to_string(outcome)
                << " (" << detail << ")" << std::endl;
    }
    knl::service::RequestJournal journal;
    if (!journal_path.empty()) {
      const auto pending = knl::service::RequestJournal::pending(journal_path);
      for (const knl::service::PendingRequest& request : pending) {
        // Replay re-warms exactly the cache entries the interrupted
        // requests would have populated; the responses are discarded.
        (void)service.handle_text(request.method, request.target, request.body);
      }
      if (!pending.empty()) {
        std::cout << "knl-serve: replayed " << pending.size()
                  << " journaled in-flight requests" << std::endl;
      }
      if (!journal.open(journal_path, /*truncate=*/true)) {
        std::cerr << "knl-serve: cannot open journal " << journal_path << "\n";
        return 1;
      }
      service.set_journal(&journal);
    }
    std::unique_ptr<knl::service::SnapshotDaemon> snapshotter;
    if (!snapshot_path.empty()) {
      snapshotter = std::make_unique<knl::service::SnapshotDaemon>(
          snapshot_path, static_cast<double>(snapshot_interval_ms));
    }

    knl::service::HttpServer server(service, http_options);
    server.start();
    // The port line is a contract: CI's service-smoke job and the socket
    // bench scrape it to find an ephemeral listener.
    std::cout << "knl-serve listening on 127.0.0.1:" << server.port() << std::endl;

    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    // Graceful drain: a watchdog bounds the whole exit path, so a wedged
    // in-flight request cannot turn SIGTERM into a hang.
    std::cout << "knl-serve: draining (deadline " << drain_deadline_ms << " ms)"
              << std::endl;
    std::thread watchdog([drain_deadline_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(drain_deadline_ms));
      std::cerr << "knl-serve: drain deadline exceeded, exiting\n";
      std::_Exit(1);
    });
    watchdog.detach();

    server.stop();  // closes the listener, joins connections (in-flight finish)
    if (snapshotter != nullptr) snapshotter->stop();
    service.set_journal(nullptr);
    journal.close();
    if (!snapshot_path.empty()) {
      std::string error;
      if (knl::service::save_cache_snapshot(snapshot_path, &error)) {
        std::cout << "knl-serve: final snapshot written to " << snapshot_path
                  << std::endl;
      } else {
        std::cerr << "knl-serve: final snapshot failed: " << error << "\n";
      }
    }

    const knl::service::ServiceCounters c = service.counters();
    std::cout << "knl-serve: served " << (c.placement + c.sweep + c.whatif)
              << " queries (" << c.shed << " shed, " << c.errors << " errors, "
              << c.deadline_exceeded << " deadline-exceeded, " << c.brownout
              << " brownout-rejects)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "knl-serve: " << e.what() << "\n";
    return 1;
  }
}
