// knl-serve: the placement-advisor daemon. Binds PlacementService to a
// loopback HTTP listener and runs until SIGINT/SIGTERM. Every knob of
// ServiceOptions and HttpServerOptions is a flag; docs/SERVICE.md documents
// the endpoints and a worked curl session.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/http.hpp"
#include "service/service.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_signal(int) { g_stop.store(true); }

void usage(std::ostream& os) {
  os << "usage: knl-serve [options]\n"
        "\n"
        "Serve placement, what-if and sweep queries over HTTP on 127.0.0.1.\n"
        "\n"
        "options:\n"
        "  --port N            TCP port (default 0 = ephemeral; the chosen\n"
        "                      port is printed on stdout as 'listening on ...')\n"
        "  --workers N         query-execution threads (default 0 = one per\n"
        "                      hardware thread)\n"
        "  --http-threads N    connection-acceptor threads (default 8)\n"
        "  --max-inflight N    admitted queries before load shedding kicks in\n"
        "                      with HTTP 429 (default 1024)\n"
        "  --retry-after-ms N  Retry-After hint on 429 responses (default 50)\n"
        "  --cache-capacity N  SweepCache entry bound (default 65536)\n"
        "  --max-sweep-cells N largest per-query sweep grid (default 512)\n"
        "  --idle-timeout-ms N keep-alive idle timeout (default 5000)\n"
        "  --help              this text\n";
}

bool parse_int(const std::string& text, long long& out) {
  try {
    std::size_t consumed = 0;
    out = std::stoll(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  knl::service::ServiceOptions service_options;
  knl::service::HttpServerOptions http_options;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (i + 1 >= args.size()) {
      std::cerr << "knl-serve: " << arg << " needs a value\n";
      return 2;
    }
    long long value = 0;
    if (!parse_int(args[++i], value) || value < 0) {
      std::cerr << "knl-serve: bad value for " << arg << ": " << args[i] << "\n";
      return 2;
    }
    if (arg == "--port" && value <= 65535) {
      http_options.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--workers") {
      service_options.workers = static_cast<int>(value);
    } else if (arg == "--http-threads" && value > 0) {
      http_options.threads = static_cast<int>(value);
    } else if (arg == "--max-inflight" && value > 0) {
      service_options.max_inflight = static_cast<std::size_t>(value);
    } else if (arg == "--retry-after-ms") {
      service_options.retry_after_ms = static_cast<int>(value);
    } else if (arg == "--cache-capacity" && value > 0) {
      service_options.cache_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--max-sweep-cells" && value > 0) {
      service_options.max_sweep_cells = static_cast<std::size_t>(value);
    } else if (arg == "--idle-timeout-ms" && value > 0) {
      http_options.idle_timeout_ms = static_cast<int>(value);
    } else {
      std::cerr << "knl-serve: unknown or out-of-range option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    knl::service::PlacementService service(service_options);
    knl::service::HttpServer server(service, http_options);
    server.start();
    // The port line is a contract: CI's service-smoke job and the socket
    // bench scrape it to find an ephemeral listener.
    std::cout << "knl-serve listening on 127.0.0.1:" << server.port() << std::endl;

    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();

    const knl::service::ServiceCounters c = service.counters();
    std::cout << "knl-serve: served " << (c.placement + c.sweep + c.whatif)
              << " queries (" << c.shed << " shed, " << c.errors << " errors)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "knl-serve: " << e.what() << "\n";
    return 1;
  }
}
